#include "algo/consistent.h"

#include <gtest/gtest.h>

#include "workload/consistent_workloads.h"
#include "workload/scenarios.h"

namespace entangled {
namespace {

/// §5's movie-night example, exactly as narrated in the paper.
class MovieNightTest : public ::testing::Test {
 protected:
  void SetUp() override { scenario_ = BuildMovieScenario(&db_); }

  Database db_;
  MovieScenario scenario_;
};

TEST_F(MovieNightTest, OptionListsMatchThePaperTable) {
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  ASSERT_TRUE(coordinator.Solve(scenario_.queries).ok());
  // V(qc)={Regal}, V(qg)={AMC}, V(qj)=V(qw)={Regal,AMC,Cinemark}:
  // V(Q) in first-seen order is Regal, AMC, Cinemark.
  const auto& outcomes = coordinator.value_outcomes();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].first, (std::vector<Value>{Value::Str("Regal")}));
  EXPECT_EQ(outcomes[1].first, (std::vector<Value>{Value::Str("AMC")}));
  EXPECT_EQ(outcomes[2].first,
            (std::vector<Value>{Value::Str("Cinemark")}));
}

TEST_F(MovieNightTest, CinemarkCleansDownToNothing) {
  // G_Cinemark = {Jonny, Will}; Will has no friend there, then Jonny
  // loses Will: empty (the paper's walkthrough).
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  ASSERT_TRUE(coordinator.Solve(scenario_.queries).ok());
  const auto& outcomes = coordinator.value_outcomes();
  EXPECT_EQ(outcomes[2].second, 0u);  // Cinemark
}

TEST_F(MovieNightTest, RegalWinsWithChrisJonnyWill) {
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  auto result = coordinator.Solve(scenario_.queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->agreed_value,
            (std::vector<Value>{Value::Str("Regal")}));
  EXPECT_EQ(result->size(), 3u);
  EXPECT_TRUE(result->ContainsQuery(0));   // Chris
  EXPECT_FALSE(result->ContainsQuery(1));  // Guy goes to AMC, excluded
  EXPECT_TRUE(result->ContainsQuery(2));   // Jonny
  EXPECT_TRUE(result->ContainsQuery(3));   // Will
}

TEST_F(MovieNightTest, AmcAlsoSupportsThreeButRegalIsFirst) {
  // G_AMC = {Guy, Jonny, Will} survives cleaning too; the tie breaks
  // towards the first value in V(Q) order, matching the paper's choice
  // of Regal.
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  ASSERT_TRUE(coordinator.Solve(scenario_.queries).ok());
  EXPECT_EQ(coordinator.value_outcomes()[1].second, 3u);  // AMC
}

TEST_F(MovieNightTest, ChosenTuplesSatisfyEachUser) {
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  auto result = coordinator.Solve(scenario_.queries);
  ASSERT_TRUE(result.ok());
  const Relation& movies = **db_.Get("M");
  for (const ConsistentMember& member : result->members) {
    RowView row = movies.row(member.self_row);
    const ConsistentQuery& q = scenario_.queries[member.query_index];
    // Cinema is the agreed value; self constraints hold.
    EXPECT_EQ(row[1], result->agreed_value[0]);
    for (size_t a = 0; a < q.self_spec.size(); ++a) {
      if (q.self_spec[a].has_value()) {
        EXPECT_EQ(row[a + 1], *q.self_spec[a]);
      }
    }
  }
  // Chris partners with Will (his constant); Jonny/Will with surviving
  // friends.
  const ConsistentMember* chris = result->FindMember(0);
  ASSERT_NE(chris, nullptr);
  EXPECT_EQ(chris->partner_queries,
            (std::vector<std::vector<size_t>>{{3}}));
  const ConsistentMember* will = result->FindMember(3);
  ASSERT_NE(will, nullptr);
  // Will's friends are Chris and Guy; only Chris survives at Regal.
  EXPECT_EQ(will->partner_queries,
            (std::vector<std::vector<size_t>>{{0}}));
}

TEST_F(MovieNightTest, StatsCountDbWorkAndValues) {
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  ASSERT_TRUE(coordinator.Solve(scenario_.queries).ok());
  const SolverStats& stats = coordinator.stats();
  EXPECT_EQ(stats.candidate_values, 3u);
  // 4 option queries + 3 friend lookups (Chris names Will directly)
  // + 3 final groundings.
  EXPECT_EQ(stats.db_queries, 10u);
  EXPECT_GT(stats.cleaning_rounds, 0u);
}

class ConsistentEdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeFlightSchema("Flights", "Friends");
    ASSERT_TRUE(InstallFlightsGrid(&db_, "Flights", {"Paris", "Rome"},
                                   {"d1", "d2"}, 2, {"NYC", "SFO"},
                                   {"AirA", "AirB"})
                    .ok());
    ASSERT_TRUE(
        InstallCompleteFriends(&db_, "Friends", MakeUserNames(4)).ok());
  }
  Database db_;
  ConsistentSchema schema_;
};

TEST_F(ConsistentEdgeCaseTest, AllWildcardsCoordinateEveryone) {
  auto queries = MakeWorstCaseConsistentQueries(4, 4);
  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(coordinator.stats().candidate_values, 4u);  // 2 dests x 2 days
}

TEST_F(ConsistentEdgeCaseTest, ConflictingConstantsSplitUsers) {
  auto queries = MakeWorstCaseConsistentQueries(4, 4);
  queries[0].self_spec[0] = Value::Str("Paris");
  queries[1].self_spec[0] = Value::Str("Paris");
  queries[2].self_spec[0] = Value::Str("Rome");
  queries[3].self_spec[0] = Value::Str("Rome");
  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  // Either city supports exactly its two fans.
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(ConsistentEdgeCaseTest, UnsatisfiableSelfSpecDropsQuery) {
  auto queries = MakeWorstCaseConsistentQueries(3, 4);
  queries[2].self_spec[0] = Value::Str("Atlantis");
  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
  EXPECT_FALSE(result->ContainsQuery(2));
}

TEST_F(ConsistentEdgeCaseTest, LonelyUserCannotCoordinate) {
  // One user whose only partner option is a friend — but there is only
  // one query, so the friend variable can never be satisfied.
  auto queries = MakeWorstCaseConsistentQueries(1, 4);
  ConsistentCoordinator coordinator(&db_, schema_);
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());
}

TEST_F(ConsistentEdgeCaseTest, PartnerlessQueryIsItsOwnSet) {
  std::vector<ConsistentQuery> queries(1);
  queries[0].user = "user0";
  queries[0].self_spec.assign(4, std::nullopt);
  ConsistentCoordinator coordinator(&db_, schema_);
  auto result = coordinator.Solve(queries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(ConsistentEdgeCaseTest, ConstantPartnerWithoutQueryFails) {
  std::vector<ConsistentQuery> queries(1);
  queries[0].user = "user0";
  queries[0].self_spec.assign(4, std::nullopt);
  queries[0].partners.push_back(PartnerSpec::User("celebrity"));
  ConsistentCoordinator coordinator(&db_, schema_);
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());
}

TEST_F(ConsistentEdgeCaseTest, CascadingCleaning) {
  // user0 needs user1 (constant), user1 needs user2 (constant), user2's
  // spec is unsatisfiable: the whole chain collapses.
  std::vector<ConsistentQuery> queries(3);
  for (size_t i = 0; i < 3; ++i) {
    queries[i].user = "user" + std::to_string(i);
    queries[i].self_spec.assign(4, std::nullopt);
  }
  queries[0].partners.push_back(PartnerSpec::User("user1"));
  queries[1].partners.push_back(PartnerSpec::User("user2"));
  queries[2].self_spec[0] = Value::Str("Atlantis");
  ConsistentCoordinator coordinator(&db_, schema_);
  EXPECT_TRUE(coordinator.Solve(queries).status().IsNotFound());
}

TEST_F(ConsistentEdgeCaseTest, ValidationCatchesBadInput) {
  ConsistentCoordinator coordinator(&db_, schema_);
  std::vector<ConsistentQuery> queries(2);
  queries[0].user = "user0";
  queries[0].self_spec.assign(4, std::nullopt);
  queries[1].user = "user0";  // duplicate user
  queries[1].self_spec.assign(4, std::nullopt);
  EXPECT_TRUE(coordinator.Solve(queries).status().IsInvalidArgument());

  queries[1].user = "user1";
  queries[1].self_spec.assign(2, std::nullopt);  // wrong attribute count
  EXPECT_TRUE(coordinator.Solve(queries).status().IsInvalidArgument());

  queries[1].self_spec.assign(4, std::nullopt);
  queries[1].partners.push_back(PartnerSpec::User("user1"));  // self
  EXPECT_TRUE(coordinator.Solve(queries).status().IsInvalidArgument());
}

TEST_F(ConsistentEdgeCaseTest, BadSchemaRejected) {
  ConsistentSchema bad = schema_;
  bad.coordination_attrs = {0};  // the key is not an attribute
  ConsistentCoordinator coordinator(&db_, bad);
  EXPECT_TRUE(coordinator.Solve(MakeWorstCaseConsistentQueries(2, 4))
                  .status()
                  .IsInvalidArgument());

  ConsistentSchema missing = schema_;
  missing.thing_relation = "Nowhere";
  ConsistentCoordinator coordinator2(&db_, missing);
  EXPECT_TRUE(coordinator2.Solve(MakeWorstCaseConsistentQueries(2, 4))
                  .status()
                  .IsNotFound());
}

TEST_F(ConsistentEdgeCaseTest, IndexAblationAgrees) {
  auto queries = MakeWorstCaseConsistentQueries(4, 4);
  queries[2].self_spec[0] = Value::Str("Paris");
  ConsistentCoordinator indexed(&db_, schema_);
  ConsistentOptions no_index_options;
  no_index_options.use_indexes = false;
  ConsistentCoordinator scanning(&db_, schema_, no_index_options);
  auto a = indexed.Solve(queries);
  auto b = scanning.Solve(queries);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->agreed_value, b->agreed_value);
  EXPECT_EQ(a->size(), b->size());
}

TEST_F(ConsistentEdgeCaseTest, EmptyQueryListIsNotFound) {
  ConsistentCoordinator coordinator(&db_, schema_);
  EXPECT_TRUE(coordinator.Solve({}).status().IsNotFound());
}

}  // namespace
}  // namespace entangled
