#include "db/loader.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

const char kFlightsEdb[] = R"(
% a demo instance
relation Flights(flightId, destination) {
  (101, Zurich)
  (102, 'New York')
}
relation Friends(user, friend) {
  (Ann, Bob)   // directed
}
)";

TEST(LoaderTest, LoadsRelationsAndTuples) {
  Database db;
  ASSERT_TRUE(LoadDatabase(kFlightsEdb, &db).ok());
  const Relation* flights = db.Find("Flights");
  ASSERT_NE(flights, nullptr);
  EXPECT_EQ(flights->size(), 2u);
  EXPECT_EQ(flights->column_names(),
            (std::vector<std::string>{"flightId", "destination"}));
  EXPECT_EQ(flights->row(0)[0], Value::Int(101));
  EXPECT_EQ(flights->row(1)[1], Value::Str("New York"));
  EXPECT_EQ(db.Find("Friends")->row(0)[0], Value::Str("Ann"));
}

TEST(LoaderTest, EmptyInputMakesEmptyDatabase) {
  Database db;
  ASSERT_TRUE(LoadDatabase("  % nothing here\n", &db).ok());
  EXPECT_EQ(db.relation_count(), 0u);
}

TEST(LoaderTest, NegativeNumbersAndEmptyRelations) {
  Database db;
  ASSERT_TRUE(
      LoadDatabase("relation T(a) { (-5) }\nrelation E(x, y) { }", &db)
          .ok());
  EXPECT_EQ(db.Find("T")->row(0)[0], Value::Int(-5));
  EXPECT_EQ(db.Find("E")->size(), 0u);
}

TEST(LoaderTest, RepeatedRelationAccumulates) {
  Database db;
  ASSERT_TRUE(LoadDatabase(
                  "relation T(a) { (1) }\nrelation T(a) { (2) }", &db)
                  .ok());
  EXPECT_EQ(db.Find("T")->size(), 2u);
}

TEST(LoaderTest, ArityErrorsAreReported) {
  Database db;
  Status redeclared =
      LoadDatabase("relation T(a) { }\nrelation T(a, b) { }", &db);
  EXPECT_TRUE(redeclared.IsInvalidArgument());
  EXPECT_NE(redeclared.message().find("redeclared"), std::string::npos);

  Database db2;
  Status bad_tuple = LoadDatabase("relation T(a, b) { (1) }", &db2);
  EXPECT_TRUE(bad_tuple.IsInvalidArgument());
}

TEST(LoaderTest, SyntaxErrorsCarryPositions) {
  Database db;
  Status status = LoadDatabase("relation T(a) { (1 }", &db);
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);

  Status keyword = LoadDatabase("table T(a) { }", &db);
  EXPECT_TRUE(keyword.IsInvalidArgument());
  EXPECT_NE(keyword.message().find("relation"), std::string::npos);

  Status unterminated = LoadDatabase("relation T(a) { ('x) }", &db);
  EXPECT_TRUE(unterminated.IsInvalidArgument());
}

TEST(LoaderTest, DumpRoundTrips) {
  Database db;
  ASSERT_TRUE(LoadDatabase(kFlightsEdb, &db).ok());
  std::string dumped = DumpDatabase(db);
  Database reloaded;
  ASSERT_TRUE(LoadDatabase(dumped, &reloaded).ok());
  EXPECT_EQ(DumpDatabase(reloaded), dumped);
  EXPECT_EQ(reloaded.TotalRows(), db.TotalRows());
  EXPECT_EQ(reloaded.relation_names(), db.relation_names());
}

TEST(LoaderTest, MissingFileIsNotFound) {
  Database db;
  EXPECT_TRUE(
      LoadDatabaseFile("/no/such/file.edb", &db).IsNotFound());
  EXPECT_TRUE(ReadFileToString("/no/such/file.edb").status().IsNotFound());
}

}  // namespace
}  // namespace entangled
