#include "reductions/theorem1.h"

#include "common/logging.h"

namespace entangled {
namespace {

// Built via append rather than operator+(const char*, string&&), which
// trips a spurious -Wrestrict in GCC 12 (PR105651).
std::string ClauseRelation(size_t clause_index) {
  std::string name("C");
  name += std::to_string(clause_index + 1);
  return name;
}

std::string VarRelation(int32_t var) {
  std::string name("R");
  name += std::to_string(var);
  return name;
}

}  // namespace

Theorem1Encoding EncodeTheorem1(const CnfFormula& formula, QuerySet* set,
                                Database* db) {
  ENTANGLED_CHECK(set != nullptr);
  ENTANGLED_CHECK(db != nullptr);
  ENTANGLED_CHECK(formula.WellFormed());

  if (!db->Contains("D")) {
    Relation* d = *db->CreateRelation("D", {"value"});
    ENTANGLED_CHECK(d->Insert({Value::Int(0)}).ok());
    ENTANGLED_CHECK(d->Insert({Value::Int(1)}).ok());
  }

  Theorem1Encoding encoding;
  const size_t k = formula.clauses.size();
  const int32_t m = formula.num_vars;

  // Clause-Query: {C1(1), ..., Ck(1)} C(1) :- ∅.
  {
    EntangledQuery q;
    q.name = "Clause-Query";
    for (size_t j = 0; j < k; ++j) {
      q.postconditions.emplace_back(ClauseRelation(j),
                                    std::vector<Term>{Term::Int(1)});
    }
    q.head.emplace_back("C", std::vector<Term>{Term::Int(1)});
    encoding.clause_query = set->AddQuery(std::move(q));
  }

  for (int32_t v = 1; v <= m; ++v) {
    // xi-Val: {C(1)} Ri(x) :- D(x).
    {
      EntangledQuery q;
      q.name = "x" + std::to_string(v) + "-Val";
      q.postconditions.emplace_back("C", std::vector<Term>{Term::Int(1)});
      VarId x = set->NewVar("x_val" + std::to_string(v));
      q.head.emplace_back(VarRelation(v), std::vector<Term>{Term::Var(x)});
      q.body.emplace_back("D", std::vector<Term>{Term::Var(x)});
      encoding.val_queries.push_back(set->AddQuery(std::move(q)));
    }
    // xi-True: {Ri(1)} ⋀_{j : xi ∈ Cj} Cj(1) :- ∅.
    // xi-False: {Ri(0)} ⋀_{j : ¬xi ∈ Cj} Cj(1) :- ∅.
    for (bool polarity : {true, false}) {
      EntangledQuery q;
      q.name = "x" + std::to_string(v) + (polarity ? "-True" : "-False");
      q.postconditions.emplace_back(
          VarRelation(v), std::vector<Term>{Term::Int(polarity ? 1 : 0)});
      for (size_t j = 0; j < k; ++j) {
        for (const Literal& literal : formula.clauses[j]) {
          if (literal.var() == v && literal.positive() == polarity) {
            q.head.emplace_back(ClauseRelation(j),
                                std::vector<Term>{Term::Int(1)});
            break;
          }
        }
      }
      QueryId id = set->AddQuery(std::move(q));
      (polarity ? encoding.true_queries : encoding.false_queries)
          .push_back(id);
    }
  }
  return encoding;
}

TruthAssignment Theorem1Encoding::DecodeAssignment(
    const CnfFormula& formula, const CoordinationSolution& sol) const {
  TruthAssignment assignment(static_cast<size_t>(formula.num_vars) + 1,
                             true);
  for (int32_t v = 1; v <= formula.num_vars; ++v) {
    const size_t index = static_cast<size_t>(v - 1);
    if (sol.Contains(false_queries[index]) &&
        !sol.Contains(true_queries[index])) {
      assignment[static_cast<size_t>(v)] = false;
    }
  }
  return assignment;
}

}  // namespace entangled
