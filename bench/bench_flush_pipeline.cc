// Flush-pipeline throughput: submissions/sec through ONE
// CoordinationEngine whose Flush() fans independent dirty components
// out on the chunked work-stealing pool.
//
// Scenario: every round submits one open chain per lane across
// kLanes disjoint relation lanes and then flushes.  Each chain is its
// own connected component, so one flush holds kLanes independent
// evaluation tasks — exactly the shape the chunked dispatch is built
// for: workers steal chunk-sized runs of component evaluations and
// write outcomes into pre-sized slots, while the coordinator applies
// them in the deterministic smallest-global-id order.  The series
// sweeps flush_threads x intake {off,on}; with the intake armed,
// Submit only validates + enqueues and the whole admission burst is
// drained at the flush boundary.
//
// speedup_vs_single compares each configuration against the
// flush_threads=1, intake-off baseline measured in the same process.
// The >= 2x bar at 4 threads needs real hardware parallelism and a
// quiet host, so it is a hard failure only under
// ENTANGLED_BENCH_STRICT=1 on a >= 4-thread machine; single-core
// containers record the scheduling overhead instead (which also bounds
// the cost of the chunked dispatch at width 1).

#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr size_t kSocialRows = 4096;
constexpr size_t kLanes = 8;
constexpr size_t kChainLength = 32;
constexpr size_t kRounds = 10;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", kSocialRows).ok());
    return database;
  }();
  return *db;
}

/// Member k of the round-`c` open chain in lane `p`: posts on member
/// k+1 through the lane-private relation L<p>, so the chain is one
/// connected component and coordinates as one set.  Lanes never share
/// a relation — components stay independent, which is what lets the
/// flush pool run them concurrently.
std::string ChainQuery(size_t p, size_t c, size_t k) {
  const std::string rel = "L" + std::to_string(p);
  auto tag = [&](size_t member) {
    return "C" + std::to_string(p) + "x" + std::to_string(c) + "x" +
           std::to_string(member);
  };
  const std::string posts =
      k + 1 < kChainLength ? rel + "(" + tag(k + 1) + ", z)" : std::string();
  return "c" + std::to_string(p) + "_" + std::to_string(c) + "_" +
         std::to_string(k) + ": { " + posts + " } " + rel + "(" + tag(k) +
         ", x) :- Users(x, 'user" + std::to_string((c + k) % 97) +
         "'), Users(y, 'user" + std::to_string((c * 7 + k + 3) % 97) +
         "').";
}

struct StreamOutcome {
  double seconds = 0;
  size_t arrivals = 0;
  double qps() const { return arrivals / seconds; }
};

/// Streams kRounds rounds of one chain per lane + Flush, timing the
/// submit+flush loop.  One untimed warm-up round runs first so the
/// intake ring, flush pool, and allocator pools are primed before the
/// clock starts — cold-start costs otherwise dominate the armed-intake
/// configurations on slow hosts and skew speedup_vs_single.
StreamOutcome RunStream(CoordinationEngine* engine) {
  engine->set_evaluate_every(0);
  for (size_t p = 0; p < kLanes; ++p) {
    for (size_t k = 0; k < kChainLength; ++k) {
      ENTANGLED_CHECK(engine->Submit(ChainQuery(p, kRounds, k)).ok());
    }
  }
  ENTANGLED_CHECK_EQ(engine->Flush(), kLanes)
      << "every lane's warm-up chain must coordinate";
  StreamOutcome outcome;
  WallTimer timer;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t p = 0; p < kLanes; ++p) {
      for (size_t k = 0; k < kChainLength; ++k) {
        ENTANGLED_CHECK(engine->Submit(ChainQuery(p, round, k)).ok());
        ++outcome.arrivals;
      }
    }
    const size_t delivered = engine->Flush();
    ENTANGLED_CHECK_EQ(delivered, kLanes)
        << "every lane's chain must coordinate each round";
  }
  outcome.seconds = timer.ElapsedSeconds();
  ENTANGLED_CHECK_EQ(engine->num_pending(), size_t{0});
  return outcome;
}

void FlushPipelineSeries() {
  benchutil::PrintSeriesHeader(
      "Flush pipeline: submissions/sec, one coordinating chain per lane "
      "per flush, " + std::to_string(kLanes) + " independent lanes",
      {"threads", "intake", "qps", "speedup_vs_single"});

  double base_qps = 0;
  double speedup_at_4 = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t intake : {size_t{0}, size_t{256}}) {
      EngineOptions options;
      options.evaluate_every = 0;
      options.flush_threads = threads;
      options.intake_capacity = intake;
      CoordinationEngine engine(&SocialDb(), options);
      StreamOutcome outcome = RunStream(&engine);
      if (threads == 1 && intake == 0) base_qps = outcome.qps();
      const double speedup = outcome.qps() / base_qps;
      if (threads == 4 && intake == 0) speedup_at_4 = speedup;
      benchutil::PrintRow({static_cast<double>(threads),
                           static_cast<double>(intake), outcome.qps(),
                           speedup});
      benchutil::PrintJsonRecord(
          "flush_pipeline",
          {{"threads", static_cast<double>(threads)},
           {"intake", static_cast<double>(intake)},
           {"lanes", static_cast<double>(kLanes)},
           {"chain_length", static_cast<double>(kChainLength)},
           {"arrivals", static_cast<double>(outcome.arrivals)},
           {"qps", outcome.qps()},
           {"speedup_vs_single", speedup}});
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const char* strict = std::getenv("ENTANGLED_BENCH_STRICT");
  const bool strict_armed =
      strict != nullptr && strict[0] != '\0' && strict[0] != '0';
  if (hardware >= 4 && strict_armed) {
    ENTANGLED_CHECK_GE(speedup_at_4, 2.0)
        << "the chunked flush pool must sustain >= 2x submissions/sec "
           "over the serial path on the independent-lane workload";
  } else if (hardware < 4) {
    benchutil::PrintNote(
        "only " + std::to_string(hardware) +
        " hardware thread(s): flush-pool parallelism cannot materialize, "
        "so the >= 2x gate is disarmed and the numbers above measure "
        "chunked-dispatch overhead only");
  } else {
    benchutil::PrintNote(
        "speedup_at_4_threads=" + std::to_string(speedup_at_4) +
        "; set ENTANGLED_BENCH_STRICT=1 to turn the >= 2x bar into a "
        "hard failure");
  }
  benchutil::PrintNote(
      "workers steal chunk-sized runs of component evaluations; the "
      "coordinator applies outcomes in ascending global-id order, so "
      "the delivery stream is identical at every width");
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::FlushPipelineSeries();
  return 0;
}
