// Robustness: the parser must return a Status — never crash, hang, or
// corrupt the query set — on arbitrary byte soup, on truncations of
// valid programs, and on random token streams.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/parser.h"

namespace entangled {
namespace {

const char kValidProgram[] =
    "qC: { R(G, x1) } R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x).\n"
    "qG: { R(C, y1), Q(C, y2) } R(G, y1), Q(G, y2) :- F(y1, Paris).";

TEST(ParserFuzzTest, EveryPrefixOfAValidProgramIsHandled) {
  const std::string program = kValidProgram;
  for (size_t cut = 0; cut <= program.size(); ++cut) {
    QuerySet set;
    auto result = ParseQueries(program.substr(0, cut), &set);
    // Either parses (full statements only) or reports a clean error.
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument()) << cut;
    }
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t length = rng.NextBounded(80);
    for (size_t i = 0; i < length; ++i) {
      soup.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
    QuerySet set;
    auto result = ParseQueries(soup, &set);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument());
    }
  }
}

TEST(ParserFuzzTest, RandomTokenStreamsNeverCrash) {
  Rng rng(0xBEEF);
  const std::vector<std::string> tokens = {
      "{",  "}",    "(",     ")",     ",",   ":-",   ".",    ":",
      "R",  "x",    "Chris", "42",    "-7",  "'s'",  "_",    "q1",
      "%c", "\n",   "\"d\"", "Flights"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string program;
    size_t length = rng.NextBounded(30);
    for (size_t i = 0; i < length; ++i) {
      program += rng.Choice(tokens);
      program.push_back(' ');
    }
    QuerySet set;
    auto result = ParseQueries(program, &set);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument());
    }
  }
}

TEST(ParserFuzzTest, DeeplyNestedInputStaysIterative) {
  // Long atom lists and long programs must not blow the stack.
  std::string long_list = "q: { } H(";
  for (int i = 0; i < 5000; ++i) long_list += "x" + std::to_string(i) + ",";
  long_list += "x) :- .";
  QuerySet set;
  EXPECT_TRUE(ParseQueries(long_list, &set).ok());

  std::string many_queries;
  for (int i = 0; i < 2000; ++i) {
    many_queries += "{ } H" + std::to_string(i) + "(x) :- .\n";
  }
  QuerySet set2;
  auto result = ParseQueries(many_queries, &set2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2000u);
}

}  // namespace
}  // namespace entangled
