#include "common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedHitsAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t draw = rng.NextInt(-2, 2);
    EXPECT_GE(draw, -2);
    EXPECT_LE(draw, 2);
    seen.insert(draw);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 appear
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double draw = rng.NextDouble();
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolIsRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool()) ++heads;
  }
  EXPECT_GT(heads, kDraws * 45 / 100);
  EXPECT_LT(heads, kDraws * 55 / 100);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleReturnsDistinctIndices) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.Sample(10, 4);
    ASSERT_EQ(sample.size(), 4u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (size_t s : sample) EXPECT_LT(s, 10u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(41);
  std::vector<size_t> sample = rng.Sample(6, 6);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(RngTest, ChoicePicksExistingElement) {
  Rng rng(43);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int choice = rng.Choice(items);
    EXPECT_TRUE(choice == 10 || choice == 20 || choice == 30);
  }
}

}  // namespace
}  // namespace entangled
