#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversInFlightTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // No Wait(): destruction must still run everything queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace entangled
