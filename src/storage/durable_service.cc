#include "storage/durable_service.h"

#include <algorithm>

#include "api/session.h"
#include "common/logging.h"
#include "core/parser.h"

namespace entangled {

namespace {

/// Per-text parse into a throwaway set: the admission check the
/// decorator runs *before* logging, so invalid texts are rejected here
/// and never reach the log or the inner service.  Returns the distinct
/// variable count on success (the arithmetic the durable variable map
/// extends by).
Result<size_t> ValidateText(const std::string& text) {
  QuerySet scratch;
  auto parsed = ParseQuery(text, &scratch);
  if (!parsed.ok()) return parsed.status();
  return scratch.num_vars();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "recovery{";
  out += used_snapshot
             ? "snapshot=" + std::to_string(snapshot_epoch)
             : std::string("snapshot=none");
  if (snapshots_skipped > 0) {
    out += " snapshots_skipped=" + std::to_string(snapshots_skipped);
  }
  out += " segments=" + std::to_string(segments_scanned);
  out += " replayed=" + std::to_string(replayed_events);
  out += " pending=" + std::to_string(recovered_pending);
  out += " suppressed=" + std::to_string(suppressed_deliveries);
  out += " reforwarded=" + std::to_string(reforwarded_deliveries);
  if (torn_tail) {
    out += " torn_tail(" + std::to_string(truncated_bytes) + "B)";
  }
  if (corruption_detected) out += " CORRUPT[" + corruption_detail + "]";
  if (anomalies > 0) out += " anomalies=" + std::to_string(anomalies);
  out += " resume_seq=" + std::to_string(resumed_sequence);
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// ReadDurableState
// ---------------------------------------------------------------------------

Result<DurableState> ReadDurableState(const std::string& dir) {
  auto listing = ListStorageDir(dir);
  if (!listing.ok()) return listing.status();
  if (listing->empty()) {
    return Status::FailedPrecondition("storage dir " + dir +
                                      " is empty: nothing to recover");
  }

  DurableState state;
  // Newest loadable snapshot wins; damaged ones are fallen past (and
  // counted) toward an older consistent point.
  bool have_snapshot = false;
  for (auto it = listing->snapshot_epochs.rbegin();
       it != listing->snapshot_epochs.rend(); ++it) {
    auto loaded = LoadSnapshot(SnapshotPath(dir, *it));
    if (loaded.ok()) {
      state.snapshot = std::move(*loaded);
      state.report.used_snapshot = true;
      state.report.snapshot_epoch = *it;
      have_snapshot = true;
      break;
    }
    ++state.report.snapshots_skipped;
    if (!state.report.corruption_detail.empty()) {
      state.report.corruption_detail += "; ";
    }
    state.report.corruption_detail += loaded.status().message();
  }
  if (!have_snapshot) {
    return Status::Internal(
        "storage dir " + dir + ": no loadable snapshot (" +
        std::to_string(state.report.snapshots_skipped) + " damaged: " +
        state.report.corruption_detail + ")");
  }

  uint64_t max_epoch = state.snapshot.epoch;
  for (uint64_t e : listing->snapshot_epochs) max_epoch = std::max(max_epoch, e);
  for (uint64_t e : listing->wal_epochs) max_epoch = std::max(max_epoch, e);
  state.next_epoch = max_epoch + 1;

  // Contiguous WAL segments from the snapshot's epoch forward.  A gap
  // (a deleted segment) means lost events: stop at the last consistent
  // point and report it as corruption rather than replaying across it.
  uint64_t expected = state.snapshot.epoch;
  for (uint64_t e : listing->wal_epochs) {
    if (e < state.snapshot.epoch) continue;
    if (e != expected) {
      state.report.corruption_detected = true;
      state.report.corruption_detail =
          "missing wal segment for epoch " + std::to_string(expected);
      break;
    }
    auto segment = ReadWalSegment(WalPath(dir, e));
    if (!segment.ok()) {
      state.report.corruption_detected = true;
      state.report.corruption_detail = segment.status().message();
      break;
    }
    ++state.report.segments_scanned;
    if (segment->corrupt) {
      // Keep the consistent prefix, stop the scan: records beyond the
      // damage (including any later segments) are unrecoverable in
      // order.
      for (WalRecord& r : segment->records) state.tail.push_back(std::move(r));
      state.report.corruption_detected = true;
      state.report.corruption_detail = segment->error;
      break;
    }
    for (WalRecord& r : segment->records) state.tail.push_back(std::move(r));
    if (segment->torn_tail) {
      state.report.torn_tail = true;
      state.report.truncated_bytes += segment->truncated_bytes;
      break;  // a torn segment is the crash frontier; nothing follows it
    }
    expected = e + 1;
  }
  return state;
}

// ---------------------------------------------------------------------------
// DurableCoordinationService
// ---------------------------------------------------------------------------

DurableCoordinationService::DurableCoordinationService(
    CoordinationService* inner, const Database* db, DurabilityOptions options)
    : inner_(inner), db_(db), options_(std::move(options)) {
  evaluate_every_ = options_.initial_evaluate_every;
  inner_->set_delivery_callback(
      [this](const Delivery& delivery) { OnInnerDelivery(delivery); });
}

Result<std::unique_ptr<DurableCoordinationService>>
DurableCoordinationService::Create(CoordinationService* inner,
                                   const Database* db,
                                   DurabilityOptions options) {
  ENTANGLED_CHECK(inner != nullptr);
  ENTANGLED_CHECK(db != nullptr);
  auto listing = ListStorageDir(options.dir);
  if (!listing.ok()) return listing.status();
  const bool fresh = listing->empty();
  std::unique_ptr<DurableCoordinationService> service(
      new DurableCoordinationService(inner, db, std::move(options)));
  if (fresh) {
    // Genesis: snapshot the initial facts (pending is empty, counters
    // zero) so recovery always has a fact baseline, then open segment 0.
    Status rotated = service->RotateWithSnapshot(0);
    if (!rotated.ok()) return rotated;
    service->ready_ = true;
  }
  // Non-empty: the caller must Recover() before submitting.
  return service;
}

Status DurableCoordinationService::LogRecord(const WalRecord& record) {
  ENTANGLED_CHECK(wal_ != nullptr) << "durable service has no open segment";
  Status appended = wal_->Append(record);
  if (!appended.ok()) return appended;
  if (record.kind != WalRecord::Kind::kDeliveryMark) ++total_events_;
  return Status::OK();
}

void DurableCoordinationService::AdoptAdmitted(int64_t durable_id,
                                               int64_t session,
                                               const std::string& text,
                                               QueryId inner_id,
                                               size_t var_count,
                                               int64_t var_start) {
  // Both namespaces allocate sequentially in admission order, so the
  // maps extend by pure arithmetic — no engine reads, no forced drains.
  ENTANGLED_CHECK_EQ(static_cast<size_t>(inner_id), inner_to_durable_.size())
      << "inner service id allocation diverged from admission order";
  inner_to_durable_.push_back(durable_id);
  if (static_cast<size_t>(durable_id) == durable_to_inner_.size()) {
    durable_to_inner_.push_back(inner_id);
    ENTANGLED_CHECK_EQ(durable_id, next_durable_id_);
    ++next_durable_id_;
  } else {
    // Recovery resubmission of a snapshot-pending query: the durable id
    // already exists below next_durable_id_.
    ENTANGLED_CHECK_LT(static_cast<size_t>(durable_id),
                       durable_to_inner_.size());
    durable_to_inner_[static_cast<size_t>(durable_id)] = inner_id;
  }
  for (size_t i = 0; i < var_count; ++i) {
    inner_var_to_durable_.push_back(static_cast<VarId>(var_start + i));
  }
  next_durable_var_ = std::max(next_durable_var_,
                               var_start + static_cast<int64_t>(var_count));
  LiveQuery live;
  live.session = session;
  live.var_start = var_start;
  live.var_count = static_cast<uint32_t>(var_count);
  live.text = text;
  live_[durable_id] = std::move(live);
}

void DurableCoordinationService::TickSubmitPhase() {
  if (evaluate_every_ > 0 && ++cadence_phase_ >= evaluate_every_) {
    cadence_phase_ = 0;
  }
}

void DurableCoordinationService::MaybeAutoSnapshot() {
  if (replaying_ || options_.snapshot_every_events == 0) return;
  if (total_events_ - last_snapshot_events_ >= options_.snapshot_every_events) {
    Status rotated = SnapshotNow();
    ENTANGLED_CHECK(rotated.ok())
        << "automatic snapshot failed: " << rotated.ToString();
  }
}

// ----- delivery rewrite -----------------------------------------------------

void DurableCoordinationService::OnInnerDelivery(const Delivery& delivery) {
  const uint64_t sequence = sequence_offset_ + delivery.sequence;

  Delivery out;
  out.sequence = sequence;
  out.queries.reserve(delivery.queries.size());
  for (const DeliveredQuery& q : delivery.queries) {
    ENTANGLED_CHECK_LT(static_cast<size_t>(q.id), inner_to_durable_.size());
    const int64_t durable_id = inner_to_durable_[static_cast<size_t>(q.id)];
    DeliveredQuery translated = q;
    translated.id = static_cast<QueryId>(durable_id);
    for (Atom& atom : translated.answers) {
      for (Term& term : atom.terms) {
        if (term.is_variable()) {
          term = Term::Var(
              inner_var_to_durable_[static_cast<size_t>(term.var())]);
        }
      }
    }
    out.queries.push_back(std::move(translated));
    // Retire from the durable view (delivered queries leave the log's
    // live set; the next snapshot no longer carries them).
    live_.erase(durable_id);
    durable_to_inner_[static_cast<size_t>(durable_id)] = -1;
  }
  delivery.witness.ForEach([&](VarId var, const Value& value) {
    out.witness.emplace(inner_var_to_durable_[static_cast<size_t>(var)],
                        value);
  });
  out.witness_names.reserve(delivery.witness_names.size());
  for (const auto& [var, name] : delivery.witness_names) {
    out.witness_names.emplace_back(
        inner_var_to_durable_[static_cast<size_t>(var)], name);
  }

  delivered_next_ = sequence + 1;

  if (replaying_ && sequence < suppress_below_) {
    // Re-derived by the replay but already seen by clients pre-crash:
    // not re-forwarded — but the session manager never hears about a
    // suppressed delivery, so its pending bookkeeping is settled here.
    ++report_.suppressed_deliveries;
    if (replay_sessions_ != nullptr) {
      for (const DeliveredQuery& q : out.queries) {
        replay_sessions_->UnadoptRecovered(q.id);
      }
    }
    return;
  }
  if (replaying_) ++report_.reforwarded_deliveries;
  if (downstream_) downstream_(out);
  if (!replaying_) {
    // Watermark *after* the forward: a mid-call crash re-forwards this
    // delivery (at-least-once) instead of losing it.
    WalRecord mark;
    mark.kind = WalRecord::Kind::kDeliveryMark;
    mark.value = delivered_next_;
    Status logged = LogRecord(mark);
    ENTANGLED_CHECK(logged.ok())
        << "delivery mark append failed: " << logged.ToString();
  }
}

// ----- mutating front door --------------------------------------------------

Result<QueryId> DurableCoordinationService::Submit(
    const std::string& query_text) {
  ENTANGLED_CHECK(ready_) << "durable service used before Recover()";
  auto var_count = ValidateText(query_text);
  if (!var_count.ok()) {
    ++rejected_;
    return var_count.status();
  }
  const int64_t durable_id = next_durable_id_;
  WalRecord record;
  record.kind = WalRecord::Kind::kSubmit;
  record.id = durable_id;
  record.session = session_tag_;
  record.text = query_text;
  Status logged = LogRecord(record);
  if (!logged.ok()) return logged;

  // Adopt *before* the inner call: with an immediate cadence the inner
  // service evaluates inside Submit, and the delivery callback needs
  // the id/variable maps to already cover the new query.  Both
  // namespaces allocate sequentially in admission order, so the inner
  // id is known ahead of time — and checked after.
  const int64_t var_start = next_durable_var_;
  const QueryId expected_inner = static_cast<QueryId>(inner_to_durable_.size());
  AdoptAdmitted(durable_id, record.session, query_text, expected_inner,
                *var_count, var_start);
  auto inner_id = inner_->Submit(query_text);
  ENTANGLED_CHECK(inner_id.ok())
      << "pre-validated submit rejected by inner service: "
      << inner_id.status().ToString();
  ENTANGLED_CHECK_EQ(*inner_id, expected_inner)
      << "inner service id allocation diverged from admission order";
  TickSubmitPhase();
  MaybeAutoSnapshot();
  return static_cast<QueryId>(durable_id);
}

Result<std::vector<QueryId>> DurableCoordinationService::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  ENTANGLED_CHECK(ready_) << "durable service used before Recover()";
  std::vector<size_t> var_counts;
  var_counts.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    auto var_count = ValidateText(text);
    if (!var_count.ok()) {
      ++rejected_;  // all-or-nothing: one rejection per refused batch
      return var_count.status();
    }
    var_counts.push_back(*var_count);
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kSubmitBatch;
  record.session = session_tag_;
  record.batch.reserve(query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    record.batch.emplace_back(next_durable_id_ + static_cast<int64_t>(i),
                              query_texts[i]);
  }
  Status logged = LogRecord(record);
  if (!logged.ok()) return logged;

  // Adopt before the inner call (see Submit): the batch's trailing
  // flush delivers through the callback, which needs the maps whole.
  const size_t base_inner = inner_to_durable_.size();
  std::vector<QueryId> ids;
  ids.reserve(query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    const int64_t durable_id = record.batch[i].first;
    AdoptAdmitted(durable_id, record.session, query_texts[i],
                  static_cast<QueryId>(base_inner + i), var_counts[i],
                  next_durable_var_);
    ids.push_back(static_cast<QueryId>(durable_id));
  }
  auto inner_ids = inner_->SubmitBatch(query_texts);
  ENTANGLED_CHECK(inner_ids.ok())
      << "pre-validated batch rejected by inner service: "
      << inner_ids.status().ToString();
  ENTANGLED_CHECK_EQ(inner_ids->size(), query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    ENTANGLED_CHECK_EQ(static_cast<size_t>((*inner_ids)[i]), base_inner + i)
        << "inner service id allocation diverged from admission order";
  }
  // A batch admits whole, then flushes once: the inner engine resets
  // its per-arrival phase (see CoordinationEngine::SubmitBatch).
  if (evaluate_every_ > 0) cadence_phase_ = 0;
  MaybeAutoSnapshot();
  return ids;
}

bool DurableCoordinationService::Cancel(QueryId id) {
  ENTANGLED_CHECK(ready_) << "durable service used before Recover()";
  if (id < 0 || static_cast<size_t>(id) >= durable_to_inner_.size()) {
    return false;
  }
  const QueryId inner_id = durable_to_inner_[static_cast<size_t>(id)];
  if (inner_id < 0) return false;
  // Admission check before logging: the probe settles any queued intake
  // (the query may coordinate as earlier events drain), so a logged
  // cancel is always applicable on replay.
  if (!inner_->IsPending(inner_id)) return false;

  WalRecord record;
  record.kind = WalRecord::Kind::kCancel;
  record.id = id;
  record.session = session_tag_;
  Status logged = LogRecord(record);
  ENTANGLED_CHECK(logged.ok())
      << "cancel append failed: " << logged.ToString();
  const bool cancelled = inner_->Cancel(inner_id);
  ENTANGLED_CHECK(cancelled) << "settled pending query refused to cancel";
  live_.erase(id);
  durable_to_inner_[static_cast<size_t>(id)] = -1;
  MaybeAutoSnapshot();
  return true;
}

size_t DurableCoordinationService::Flush() {
  ENTANGLED_CHECK(ready_) << "durable service used before Recover()";
  WalRecord record;
  record.kind = WalRecord::Kind::kFlush;
  Status logged = LogRecord(record);
  ENTANGLED_CHECK(logged.ok()) << "flush append failed: " << logged.ToString();
  Status synced = wal_->MarkFlush();
  ENTANGLED_CHECK(synced.ok()) << "flush fsync failed: " << synced.ToString();
  const size_t delivered = inner_->Flush();
  MaybeAutoSnapshot();
  return delivered;
}

void DurableCoordinationService::set_evaluate_every(size_t evaluate_every) {
  ENTANGLED_CHECK(ready_) << "durable service used before Recover()";
  WalRecord record;
  record.kind = WalRecord::Kind::kSetEvaluateEvery;
  record.value = evaluate_every;
  Status logged = LogRecord(record);
  ENTANGLED_CHECK(logged.ok())
      << "cadence append failed: " << logged.ToString();
  inner_->set_evaluate_every(evaluate_every);
  // Rate changes preserve the phase in both engines (they drain first;
  // earlier submissions keep the cadence in force when they arrived).
  evaluate_every_ = evaluate_every;
  MaybeAutoSnapshot();
}

// ----- reads ----------------------------------------------------------------

std::vector<QueryId> DurableCoordinationService::PendingQueries() const {
  std::vector<QueryId> pending = inner_->PendingQueries();
  for (QueryId& id : pending) {
    id = static_cast<QueryId>(inner_to_durable_[static_cast<size_t>(id)]);
  }
  // Both namespaces grow in admission order, so the translation is
  // monotone and the list stays ascending.
  return pending;
}

bool DurableCoordinationService::IsPending(QueryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= durable_to_inner_.size()) {
    return false;
  }
  const QueryId inner_id = durable_to_inner_[static_cast<size_t>(id)];
  if (inner_id < 0) return false;
  return inner_->IsPending(inner_id);
}

std::vector<QueryId> DurableCoordinationService::ComponentOf(
    QueryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= durable_to_inner_.size()) {
    return {};
  }
  const QueryId inner_id = durable_to_inner_[static_cast<size_t>(id)];
  if (inner_id < 0) return {};
  std::vector<QueryId> component = inner_->ComponentOf(inner_id);
  for (QueryId& member : component) {
    member =
        static_cast<QueryId>(inner_to_durable_[static_cast<size_t>(member)]);
  }
  return component;
}

EngineStats DurableCoordinationService::StatsSnapshot() const {
  EngineStats stats = inner_->StatsSnapshot();
  stats.rejected += rejected_;  // pre-validation refusals never reach inner
  return stats;
}

void DurableCoordinationService::AppendCounters(
    std::vector<std::pair<std::string, uint64_t>>* counters) const {
  const WalStats total = wal_stats();
  counters->emplace_back("wal.appended_records", total.appended_records);
  counters->emplace_back("wal.bytes", total.bytes);
  counters->emplace_back("wal.fsyncs", total.fsyncs);
  counters->emplace_back("snapshot.count", snapshot_count_);
  counters->emplace_back("recovery.replayed_events", report_.replayed_events);
  counters->emplace_back("recovery.truncated_bytes",
                         report_.truncated_bytes);
}

WalStats DurableCoordinationService::wal_stats() const {
  WalStats total = closed_wal_stats_;
  if (wal_ != nullptr) total += wal_->stats();
  return total;
}

// ----- rotation -------------------------------------------------------------

Status DurableCoordinationService::SnapshotNow() {
  // Settle queued intake first: the snapshot's pending set and cadence
  // mirror must describe a fully-drained service (drains are
  // delivery-stream-neutral, so this is observably a no-op).
  (void)inner_->num_pending();
  return RotateWithSnapshot(epoch_ + 1);
}

Status DurableCoordinationService::RotateWithSnapshot(uint64_t new_epoch) {
  SnapshotState state;
  state.epoch = new_epoch;
  state.next_durable_id = next_durable_id_;
  state.next_durable_var = next_durable_var_;
  state.next_sequence = delivered_next_;
  state.evaluate_every = evaluate_every_;
  state.cadence_phase = cadence_phase_;
  state.total_events = total_events_;
  CaptureDatabaseFacts(*db_, &state);
  state.pending.reserve(live_.size());
  for (const auto& [durable_id, live] : live_) {
    SnapshotPendingQuery pending;
    pending.id = durable_id;
    pending.session = live.session;
    pending.var_start = live.var_start;
    pending.var_count = live.var_count;
    pending.text = live.text;
    state.pending.push_back(std::move(pending));
  }

  // The outgoing segment is made durable before the snapshot that
  // supersedes it, so disk never claims a snapshot ahead of its log.
  if (wal_ != nullptr) {
    Status synced = wal_->Sync();
    if (!synced.ok()) return synced;
  }
  Status written = WriteSnapshot(state, options_.dir);
  if (!written.ok()) return written;
  auto writer =
      WalWriter::Create(WalPath(options_.dir, new_epoch), new_epoch,
                        options_.fsync);
  if (!writer.ok()) return writer.status();
  if (wal_ != nullptr) closed_wal_stats_ += wal_->stats();
  wal_ = std::move(*writer);
  epoch_ = new_epoch;
  ++snapshot_count_;
  last_snapshot_events_ = total_events_;
  return Status::OK();
}

// ----- recovery -------------------------------------------------------------

void DurableCoordinationService::ApplyReplayed(const WalRecord& record,
                                               SessionManager* sessions) {
  switch (record.kind) {
    case WalRecord::Kind::kSubmit: {
      auto var_count = ValidateText(record.text);
      if (!var_count.ok() || record.id != next_durable_id_) {
        ++report_.anomalies;
        return;
      }
      // Ownership lands before the submission so a delivery fired
      // inside the call (per-arrival evaluation) routes to its session.
      if (sessions != nullptr && record.session >= 0) {
        sessions->AdoptRecovered(record.session,
                                 static_cast<QueryId>(record.id));
      }
      // Adopt before the inner call (see Submit): replay runs at the
      // recorded cadence, so the call itself can deliver.  A validated
      // text cannot be refused by the inner service, hence the CHECK
      // rather than an anomaly.
      const int64_t var_start = next_durable_var_;
      const QueryId expected_inner =
          static_cast<QueryId>(inner_to_durable_.size());
      AdoptAdmitted(record.id, record.session, record.text, expected_inner,
                    *var_count, var_start);
      auto inner_id = inner_->Submit(record.text);
      ENTANGLED_CHECK(inner_id.ok() && *inner_id == expected_inner)
          << "validated replay submit diverged in the inner service";
      TickSubmitPhase();
      // Second adoption pass marks the query session-pending now that
      // the service can answer IsPending for it.
      if (sessions != nullptr && record.session >= 0) {
        sessions->AdoptRecovered(record.session,
                                 static_cast<QueryId>(record.id));
      }
      return;
    }
    case WalRecord::Kind::kSubmitBatch: {
      std::vector<std::string> texts;
      std::vector<size_t> var_counts;
      texts.reserve(record.batch.size());
      var_counts.reserve(record.batch.size());
      int64_t expected = next_durable_id_;
      for (const auto& [durable_id, text] : record.batch) {
        auto var_count = ValidateText(text);
        if (!var_count.ok() || durable_id != expected) {
          ++report_.anomalies;
          return;
        }
        ++expected;
        texts.push_back(text);
        var_counts.push_back(*var_count);
      }
      if (sessions != nullptr && record.session >= 0) {
        for (const auto& [durable_id, text] : record.batch) {
          sessions->AdoptRecovered(record.session,
                                   static_cast<QueryId>(durable_id));
        }
      }
      const size_t base_inner = inner_to_durable_.size();
      for (size_t i = 0; i < texts.size(); ++i) {
        AdoptAdmitted(record.batch[i].first, record.session, texts[i],
                      static_cast<QueryId>(base_inner + i), var_counts[i],
                      next_durable_var_);
      }
      auto inner_ids = inner_->SubmitBatch(texts);
      ENTANGLED_CHECK(inner_ids.ok() && inner_ids->size() == texts.size())
          << "validated replay batch diverged in the inner service";
      if (evaluate_every_ > 0) cadence_phase_ = 0;
      if (sessions != nullptr && record.session >= 0) {
        for (const auto& [durable_id, text] : record.batch) {
          sessions->AdoptRecovered(record.session,
                                   static_cast<QueryId>(durable_id));
        }
      }
      return;
    }
    case WalRecord::Kind::kCancel: {
      if (record.id < 0 ||
          static_cast<size_t>(record.id) >= durable_to_inner_.size()) {
        ++report_.anomalies;
        return;
      }
      const QueryId inner_id =
          durable_to_inner_[static_cast<size_t>(record.id)];
      if (inner_id < 0 || !inner_->IsPending(inner_id)) {
        ++report_.anomalies;
        return;
      }
      const bool cancelled = inner_->Cancel(inner_id);
      ENTANGLED_CHECK(cancelled);
      live_.erase(record.id);
      durable_to_inner_[static_cast<size_t>(record.id)] = -1;
      if (sessions != nullptr) {
        sessions->UnadoptRecovered(static_cast<QueryId>(record.id));
      }
      return;
    }
    case WalRecord::Kind::kSetEvaluateEvery:
      inner_->set_evaluate_every(static_cast<size_t>(record.value));
      evaluate_every_ = static_cast<size_t>(record.value);
      return;
    case WalRecord::Kind::kFlush:
      inner_->Flush();
      return;
    case WalRecord::Kind::kDeliveryMark:
      return;  // watermark was folded into suppress_below_ up front
  }
  ++report_.anomalies;  // unknown kind survived CRC — count, don't crash
}

Status DurableCoordinationService::Recover(DurableState state,
                                           SessionManager* sessions) {
  ENTANGLED_CHECK(!ready_) << "Recover() on an already-live durable service";
  ENTANGLED_CHECK(live_.empty() && next_durable_id_ == 0)
      << "Recover() requires a freshly created decorator";
  replaying_ = true;
  replay_sessions_ = sessions;
  report_ = std::move(state.report);

  // Counters resume where the snapshot left them.
  next_durable_id_ = state.snapshot.next_durable_id;
  next_durable_var_ = state.snapshot.next_durable_var;
  sequence_offset_ = state.snapshot.next_sequence;
  delivered_next_ = state.snapshot.next_sequence;
  evaluate_every_ = static_cast<size_t>(state.snapshot.evaluate_every);
  total_events_ = state.snapshot.total_events;
  durable_to_inner_.assign(static_cast<size_t>(next_durable_id_), -1);

  // The suppression watermark: everything below it reached clients
  // pre-crash.  Marks ride in the tail; the snapshot is a floor.
  suppress_below_ = state.snapshot.next_sequence;
  for (const WalRecord& record : state.tail) {
    if (record.kind == WalRecord::Kind::kDeliveryMark) {
      suppress_below_ = std::max(suppress_below_, record.value);
    }
  }

  // Phase A — rebuild the snapshot's pending set with evaluation
  // suspended: admission must not deliver while the set is a partial
  // prefix (the pre-crash service never evaluated these mid-rebuild
  // either; their admission-time evaluations already ran before the
  // snapshot and found nothing, or they would not be pending).
  inner_->set_evaluate_every(0);
  for (const SnapshotPendingQuery& pending : state.snapshot.pending) {
    auto var_count = ValidateText(pending.text);
    if (!var_count.ok() || *var_count != pending.var_count) {
      replaying_ = false;
      replay_sessions_ = nullptr;
      return Status::Internal("snapshot pending query " +
                              std::to_string(pending.id) +
                              " no longer parses: " +
                              var_count.status().message());
    }
    auto inner_id = inner_->Submit(pending.text);
    if (!inner_id.ok()) {
      replaying_ = false;
      replay_sessions_ = nullptr;
      return Status::Internal("snapshot pending resubmission failed: " +
                              inner_id.status().message());
    }
    AdoptAdmitted(pending.id, pending.session, pending.text, *inner_id,
                  pending.var_count, pending.var_start);
    if (sessions != nullptr && pending.session >= 0) {
      sessions->AdoptRecovered(pending.session,
                               static_cast<QueryId>(pending.id));
    }
  }
  report_.recovered_pending = state.snapshot.pending.size();

  // Cadence resumes exactly where the snapshot froze it.
  inner_->set_evaluate_every(evaluate_every_);
  inner_->RestoreCadencePhase(static_cast<size_t>(state.snapshot.cadence_phase));
  cadence_phase_ = static_cast<size_t>(state.snapshot.cadence_phase);

  // Phase B — replay the tail at the recorded cadence.  Deliveries
  // re-derived below the watermark are suppressed in OnInnerDelivery;
  // ones beyond it forward to the (already wired) downstream now.
  for (const WalRecord& record : state.tail) {
    ApplyReplayed(record, sessions);
    ++report_.replayed_events;
  }
  // Settle queued intake so every pre-crash delivery is re-derived (and
  // every in-flight one re-forwarded) before recovery returns.
  (void)inner_->num_pending();

  // Rotate into a fresh epoch capturing the recovered state: a second
  // recovery replays this snapshot, not the old log (idempotence).
  Status rotated = RotateWithSnapshot(state.next_epoch);
  replaying_ = false;
  replay_sessions_ = nullptr;
  if (!rotated.ok()) return rotated;
  report_.resumed_sequence = delivered_next_;
  ready_ = true;
  return Status::OK();
}

}  // namespace entangled
