// Ablation A6 — the paper's declared future work (§6.2): "our algorithm
// naturally breaks into parallel processes, where each possible value
// can be easily checked independently.  We believe that this could even
// further reduce the running time."
//
// This bench implements and measures exactly that: the Figure-7 worst
// case (50 queries, complete friendships, |V(Q)| = table size) with the
// per-value cleaning loop spread over worker threads.  Outputs are
// bit-identical across thread counts (tests enforce it); only the wall
// clock changes.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "algo/consistent.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/consistent_workloads.h"

namespace entangled {
namespace {

// The parallelized part is the per-value cleaning loop, so the workload
// must make cleaning dominate.  With plain AnyFriend requirements and
// complete friendships, cleaning short-circuits at the first surviving
// friend and the (sequential) option-list phase dominates instead —
// Amdahl caps the speedup near 1.  Demanding KFriends(n/2) makes every
// cleaning pass count n/2 friends per query: O(|V(Q)| * n^2 / 2) work
// in the parallel section.
constexpr size_t kNumQueries = 300;

std::unique_ptr<Database> MakeDb(size_t table_rows) {
  auto db = std::make_unique<Database>();
  ENTANGLED_CHECK(
      InstallDistinctFlightsTable(db.get(), "Flights", table_rows).ok());
  ENTANGLED_CHECK(InstallCompleteFriends(db.get(), "Friends",
                                         MakeUserNames(kNumQueries))
                      .ok());
  return db;
}

std::vector<ConsistentQuery> MakeQueries() {
  auto queries = MakeWorstCaseConsistentQueries(kNumQueries, 4);
  for (auto& q : queries) {
    q.partners = {PartnerSpec::KFriends(kNumQueries / 2)};
  }
  return queries;
}

double RunThreads(const Database& db, int threads) {
  ConsistentOptions options;
  options.num_threads = threads;
  const std::vector<ConsistentQuery> queries = MakeQueries();
  return benchutil::MeanMillis(3, [&] {
    ConsistentCoordinator coordinator(
        &db, MakeFlightSchema("Flights", "Friends"), options);
    auto result = coordinator.Solve(queries);
    ENTANGLED_CHECK(result.ok()) << result.status();
    ENTANGLED_CHECK_EQ(result->size(), kNumQueries);
  });
}

void PrintPaperSeries() {
  const unsigned hw = std::thread::hardware_concurrency();
  benchutil::PrintSeriesHeader(
      "Ablation A6: parallel per-value checking (Figure-7 worst case; "
      "hardware threads: " + std::to_string(hw) + ")",
      {"table_rows", "t1_ms", "t2_ms", "t4_ms", "speedup_t2",
       "speedup_t4"});
  for (size_t rows : {50, 100, 200}) {
    std::unique_ptr<Database> db = MakeDb(rows);
    double t1 = RunThreads(*db, 1);
    double t2 = RunThreads(*db, 2);
    double t4 = RunThreads(*db, 4);
    benchutil::PrintRow({static_cast<double>(rows), t1, t2, t4,
                         t2 > 0 ? t1 / t2 : 0.0, t4 > 0 ? t1 / t4 : 0.0});
  }
  benchutil::PrintNote(
      "expected on dedicated multi-core hardware: speedup approaching "
      "min(threads, cores); on shared/throttled vCPUs (common CI "
      "containers) the memory-bound loop may show none - the contract "
      "checked by tests is bit-identical output at every thread count");
}

void BM_ParallelValues(benchmark::State& state) {
  std::unique_ptr<Database> db = MakeDb(100);
  ConsistentOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  const std::vector<ConsistentQuery> queries = MakeQueries();
  for (auto _ : state) {
    ConsistentCoordinator coordinator(
        db.get(), MakeFlightSchema("Flights", "Friends"), options);
    benchmark::DoNotOptimize(coordinator.Solve(queries).ok());
  }
}
BENCHMARK(BM_ParallelValues)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
