#ifndef ENTANGLED_DB_BINDING_H_
#define ENTANGLED_DB_BINDING_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "db/term.h"
#include "db/value.h"

namespace entangled {

/// \brief A (partial) assignment of values to query variables, stored
/// densely: a flat value array covering a contiguous VarId window plus
/// an engaged bitmap.
///
/// This is the structure the evaluator's innermost loop reads and
/// writes once per term per candidate row, so lookup, bind, and
/// unbind are direct array accesses — no hashing, no node
/// allocations.  Density is what makes that cheap: QuerySet::Subset
/// remaps component variables to a compact [0, k) id space, so a
/// per-evaluation binding is O(component), not O(engine-wide
/// variables).
///
/// Storage covers the window [base, base + capacity): the base (kept
/// 64-aligned so bitmap words stay simple) snaps to the first bound
/// variable and the window grows in either direction on demand.  A
/// witness translated back into an engine's global variable space —
/// whose ids grow without bound over the engine's lifetime — therefore
/// costs O(component id span), not O(largest id ever allocated).
///
/// Iteration (ForEach, Vars) runs in ascending variable order, which
/// keeps every rendering and comparison deterministic.
class Binding {
 public:
  Binding() = default;
  /// Pre-sizes storage for variables [0, num_vars).
  explicit Binding(size_t num_vars) { Reserve(num_vars); }

  Binding(const Binding&) = default;
  Binding& operator=(const Binding&) = default;
  // Moves leave the source empty (not just unspecified): the evaluator
  // moves a witness out mid-search and the unwinding backtrack must
  // see a consistent, harmlessly-empty binding.
  Binding(Binding&& other) noexcept
      : values_(std::move(other.values_)),
        engaged_(std::move(other.engaged_)),
        base_(other.base_),
        size_(other.size_) {
    other.base_ = 0;
    other.size_ = 0;
  }
  Binding& operator=(Binding&& other) noexcept {
    values_ = std::move(other.values_);
    engaged_ = std::move(other.engaged_);
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = 0;
    other.size_ = 0;
    other.values_.clear();
    other.engaged_.clear();
    return *this;
  }

  /// Grows storage so vars [0, num_vars) bind without reallocation.
  void Reserve(size_t num_vars) {
    if (num_vars == 0) return;
    EnsureCovers(0);
    EnsureCovers(static_cast<VarId>(num_vars - 1));
  }

  bool contains(VarId var) const {
    return InRange(var) && IsEngaged(var);
  }

  /// The bound value, or nullptr when `var` is unbound.
  const Value* Find(VarId var) const {
    return contains(var) ? &values_[Slot(var)] : nullptr;
  }

  /// The bound value; CHECK-fails when `var` is unbound.
  const Value& at(VarId var) const {
    ENTANGLED_CHECK(contains(var)) << "variable ?" << var << " is unbound";
    return values_[Slot(var)];
  }

  /// Binds `var` if unbound (map::emplace semantics: an existing
  /// binding wins).  Returns true when a new binding was made.
  bool emplace(VarId var, const Value& value) {
    ENTANGLED_CHECK_GE(var, 0) << "negative variable id";
    if (!InRange(var)) EnsureCovers(var);
    if (IsEngaged(var)) return false;
    SetEngaged(var);
    values_[Slot(var)] = value;
    ++size_;
    return true;
  }

  /// Binds or overwrites `var`.
  void Set(VarId var, const Value& value) {
    if (!emplace(var, value)) values_[Slot(var)] = value;
  }

  /// Unbinds `var`; returns true when it was bound.
  bool erase(VarId var) {
    if (!contains(var)) return false;
    ClearEngaged(var);
    --size_;
    return true;
  }

  /// First id of the storage window (64-aligned; exposed for tests).
  VarId base() const { return base_; }
  /// Number of variable slots currently allocated.
  size_t capacity() const { return values_.size(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Calls f(VarId, const Value&) per binding, ascending by variable.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t w = 0; w < engaged_.size(); ++w) {
      uint64_t word = engaged_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        word &= word - 1;
        size_t slot = w * 64 + static_cast<size_t>(bit);
        f(static_cast<VarId>(static_cast<size_t>(base_) + slot),
          values_[slot]);
      }
    }
  }

  /// Bound variables, ascending.
  std::vector<VarId> Vars() const {
    std::vector<VarId> vars;
    vars.reserve(size_);
    ForEach([&vars](VarId var, const Value&) { vars.push_back(var); });
    return vars;
  }

  /// Bindings compare by content: same bound variables, same values
  /// (internal capacity is irrelevant).
  friend bool operator==(const Binding& a, const Binding& b) {
    if (a.size_ != b.size_) return false;
    bool equal = true;
    a.ForEach([&](VarId var, const Value& value) {
      if (equal) {
        const Value* other = b.Find(var);
        equal = other != nullptr && *other == value;
      }
    });
    return equal;
  }
  friend bool operator!=(const Binding& a, const Binding& b) {
    return !(a == b);
  }

 private:
  bool InRange(VarId var) const {
    return var >= base_ &&
           static_cast<size_t>(var - base_) < values_.size();
  }
  size_t Slot(VarId var) const { return static_cast<size_t>(var - base_); }
  bool IsEngaged(VarId var) const {
    return (engaged_[Slot(var) / 64] >> (Slot(var) % 64)) & 1;
  }
  void SetEngaged(VarId var) {
    engaged_[Slot(var) / 64] |= uint64_t{1} << (Slot(var) % 64);
  }
  void ClearEngaged(VarId var) {
    engaged_[Slot(var) / 64] &= ~(uint64_t{1} << (Slot(var) % 64));
  }

  /// Extends the storage window to include `var`.  The first binding
  /// snaps the base to `var` rounded down to a bitmap word; growing
  /// downward later prepends at least a window-doubling's worth of
  /// slots so alternating low/high binds stay amortized O(1).
  void EnsureCovers(VarId var) {
    const VarId aligned = var & ~VarId{63};
    if (values_.empty()) {
      base_ = aligned;
      values_.resize(64);
      engaged_.assign(1, 0);
      return;
    }
    if (var < base_) {
      VarId new_base = aligned;
      const VarId doubled =
          base_ - static_cast<VarId>(std::min<size_t>(
                      values_.size(), static_cast<size_t>(base_)));
      new_base = std::min(new_base, std::max<VarId>(0, doubled));
      const size_t shift = static_cast<size_t>(base_ - new_base);
      values_.insert(values_.begin(), shift, Value());
      engaged_.insert(engaged_.begin(), shift / 64, 0);
      base_ = new_base;
    } else if (static_cast<size_t>(var - base_) >= values_.size()) {
      const size_t needed = static_cast<size_t>(var - base_) + 1;
      values_.resize(((needed + 63) / 64) * 64);
      engaged_.resize(values_.size() / 64, 0);
    }
  }

  std::vector<Value> values_;
  std::vector<uint64_t> engaged_;
  VarId base_ = 0;  // 64-aligned start of the storage window
  size_t size_ = 0;
};

}  // namespace entangled

#endif  // ENTANGLED_DB_BINDING_H_
