#ifndef ENTANGLED_WORKLOAD_SCENARIOS_H_
#define ENTANGLED_WORKLOAD_SCENARIOS_H_

#include <string>
#include <vector>

#include "algo/consistent.h"
#include "common/rng.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Query handles for the §2.2 flight–hotel example (Figure 1).
struct FlightHotelIds {
  QueryId qc;  ///< Chris: same flight as Guy, any destination
  QueryId qg;  ///< Guy: Paris, same flight and hotel as Chris
  QueryId qj;  ///< Jonny: Athens, same flight as Chris and Guy
  QueryId qw;  ///< Will: Madrid, same flight as Chris, same hotel as Jonny
};

/// \brief Builds the flight–hotel example exactly as in Figure 1:
/// relations F(flightId, destination) and H(hotelId, location) with a
/// few flights/hotels per city, plus the four band-member queries.
///
/// With the default data the SCC algorithm coordinates {qC, qG} (Paris)
/// while qJ and qW fail, reproducing §4's walkthrough.
FlightHotelIds BuildFlightHotelScenario(Database* db, QuerySet* set);

/// \brief The §5 movie-night example: friendship table C, cinema table
/// M(movie_id, cinema, movie), coordination attribute = cinema.
/// Expected outcome: Regal wins with {Chris, Jonny, Will}; Cinemark
/// cleans down to nothing.
struct MovieScenario {
  ConsistentSchema schema;
  std::vector<ConsistentQuery> queries;  ///< Chris, Guy, Jonny, Will
};
MovieScenario BuildMovieScenario(Database* db);

/// \brief Example 2: Coldplay fans across the world coordinating on a
/// concert (destination, date), each with at least one friend, personal
/// non-coordination constraints (origin airport, airline) sprinkled in.
struct ConcertScenario {
  ConsistentSchema schema;
  std::vector<ConsistentQuery> queries;
  std::vector<std::string> fans;
  std::vector<std::string> tour_stops;
};
ConcertScenario BuildConcertScenario(Database* db, size_t num_fans,
                                     Rng* rng);

}  // namespace entangled

#endif  // ENTANGLED_WORKLOAD_SCENARIOS_H_
