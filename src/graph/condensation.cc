#include "graph/condensation.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace entangled {

Digraph Condense(const Digraph& graph, const SccResult& scc) {
  ENTANGLED_CHECK_EQ(scc.component_of.size(),
                     static_cast<size_t>(graph.num_nodes()));
  Digraph result(scc.num_components());
  std::unordered_set<std::pair<NodeId, NodeId>, PairHash> seen;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    NodeId cu = scc.component_of[static_cast<size_t>(u)];
    for (NodeId v : graph.Successors(u)) {
      NodeId cv = scc.component_of[static_cast<size_t>(v)];
      if (cu == cv) continue;
      if (seen.emplace(cu, cv).second) result.AddEdge(cu, cv);
    }
  }
  return result;
}

}  // namespace entangled
