#include "common/status.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorFactoriesSetCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ErrorIsNotOk) {
  Status status = Status::NotFound("missing");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.IsInvalidArgument());
}

TEST(StatusTest, MessageConcatenatesPieces) {
  Status status = Status::InvalidArgument("arity ", 3, " != ", 4);
  EXPECT_EQ(status.message(), "arity 3 != 4");
}

TEST(StatusTest, MessageSupportsCharAndString) {
  Status status =
      Status::Internal(std::string("a"), 'b', "c", int64_t{42});
  EXPECT_EQ(status.message(), "abc42");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("gone").ToString(), "Not found: gone");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    ENTANGLED_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    ENTANGLED_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(outer().IsInternal());
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "Invalid argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "Already exists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "Failed precondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace entangled
