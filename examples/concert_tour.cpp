// Example 2 from the paper's introduction: Coldplay fans scattered
// around the world each want to attend a concert with at least one
// friend.  They coordinate on the flight's (destination, date); each
// fan additionally has personal constraints — origin airport, sometimes
// an airline or a pinned city — that are NOT shared with friends
// (A-non-coordinating attributes).
//
// Build & run:  ./build/examples/concert_tour [num_fans] [seed]

#include <cstdlib>
#include <iostream>

#include "algo/consistent.h"
#include "example_common.h"
#include "workload/scenarios.h"

using namespace entangled;
using namespace entangled::examples;

int main(int argc, char** argv) {
  size_t num_fans = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 12;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 2012;
  if (num_fans < 2) num_fans = 2;

  Database db;
  Rng rng(seed);
  ConcertScenario scenario = BuildConcertScenario(&db, num_fans, &rng);

  PrintBanner("Concert tour coordination (Example 2)");
  std::cout << num_fans << " fans, " << db.Get("Flights").value()->size()
            << " flights, tour stops:";
  for (const auto& stop : scenario.tour_stops) std::cout << " " << stop;
  std::cout << "\n\nFan wishlists:\n";
  for (const ConsistentQuery& q : scenario.queries) {
    std::cout << "  " << q.user << " from " << *q.self_spec[2];
    if (q.self_spec[0]) std::cout << ", insists on " << *q.self_spec[0];
    if (q.self_spec[3]) std::cout << ", flies only " << *q.self_spec[3];
    std::cout << ", with any friend\n";
  }

  ConsistentCoordinator coordinator(&db, scenario.schema);
  auto solution = coordinator.Solve(scenario.queries);
  if (!solution.ok()) {
    std::cerr << "\nno coordination possible: " << solution.status() << "\n";
    return 1;
  }

  std::cout << "\nAgreed concert: " << solution->agreed_value[0] << " on "
            << solution->agreed_value[1] << "  (" << solution->size()
            << " of " << num_fans << " fans make it)\n";
  const Relation& flights = **db.Get("Flights");
  for (const ConsistentMember& member : solution->members) {
    RowView row = flights.row(member.self_row);
    const std::string& buddy =
        scenario.queries[member.partner_queries[0][0]].user;
    std::cout << "  " << scenario.queries[member.query_index].user
              << ": flight " << row[0] << " from " << row[3] << " ("
              << row[4] << "), meeting " << buddy << " there\n";
  }

  std::cout << "\nCandidate (destination, date) pairs examined: "
            << coordinator.stats().candidate_values << "\n";
  std::cout << "database queries issued: "
            << coordinator.stats().db_queries << "\n";

  // Validate the plan through the generic entangled-query machinery.
  QuerySet general;
  ConsistentConversion conversion =
      ToEntangledQueries(scenario.schema, scenario.queries, &general);
  CoordinationSolution translated = ToCoordinationSolution(
      db, scenario.schema, scenario.queries, conversion, *solution);
  return ReportValidation(ValidateSolution(db, general, translated));
}
