// Quickstart: the paper's very first example (§2.1).  Gwyneth wants to
// fly with Chris to Zurich; Chris just wants a Zurich flight.  Their
// two entangled queries coordinate on a single flight id.
//
//   q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
//   q2 = { }           R(Chris, y)   :- Flights(y, Zurich)
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "algo/scc_coordination.h"
#include "core/parser.h"
#include "core/validator.h"
#include "db/database.h"

using namespace entangled;

int main() {
  // 1. A tiny flight database.
  Database db;
  Relation* flights = *db.CreateRelation("Flights", {"flightId", "dest"});
  for (auto [id, dest] : std::initializer_list<std::pair<int, const char*>>{
           {99, "Paris"}, {101, "Zurich"}, {102, "Zurich"}}) {
    if (Status s = flights->Insert({Value::Int(id), Value::Str(dest)});
        !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  // 2. Two entangled queries in the paper's concrete syntax.
  QuerySet queries;
  auto ids = ParseQueries(
      "q1: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).\n"
      "q2: { }             R(Chris, y)   :- Flights(y, Zurich).",
      &queries);
  if (!ids.ok()) {
    std::cerr << "parse error: " << ids.status() << "\n";
    return 1;
  }
  std::cout << "Submitted queries:\n" << queries.ToString() << "\n";

  // 3. Find a coordinating set (Definition 1).
  SccCoordinator coordinator(&db);
  auto solution = coordinator.Solve(queries);
  if (!solution.ok()) {
    std::cerr << "no coordination: " << solution.status() << "\n";
    return 1;
  }
  std::cout << "Coordinating set: " << SolutionToString(queries, *solution)
            << "\n\n";

  // 4. Each user reads their answer off their grounded head atoms.
  for (QueryId id : solution->queries) {
    for (const Atom& answer : solution->GroundedHeads(queries, id)) {
      std::cout << "  answer for " << queries.query(id).name << ": "
                << answer << "\n";
    }
  }

  // 5. Never trust a solver: re-check Definition 1 independently.
  Status valid = ValidateSolution(db, queries, *solution);
  std::cout << "\nindependent validation: " << valid << "\n";
  return valid.ok() ? 0 : 1;
}
