// Differential test of the incremental coordination core: across
// randomized submit / cancel / flush interleavings, the incremental
// engine (persistent graph index + union-find components + dirty-set
// scheduling) must deliver byte-identical output — the same
// coordinating sets, in the same retirement order, with the same
// witnessing assignments — as the from-scratch reference path that
// rebuilds the coordination graph for every evaluation.  A second
// differential axis checks that the parallel Flush() is
// thread-count-invariant.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/validator.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// One recorded delivery: engine ids plus the full witness assignment.
struct LoggedDelivery {
  std::vector<QueryId> queries;
  Binding assignment;

  friend bool operator==(const LoggedDelivery& a, const LoggedDelivery& b) {
    return a.queries == b.queries && a.assignment == b.assignment;
  }
};

std::string DeliveryLogToString(const std::vector<LoggedDelivery>& log) {
  std::ostringstream out;
  for (const LoggedDelivery& d : log) {
    out << "{";
    for (QueryId q : d.queries) out << q << ",";
    out << "} ";
  }
  return out.str();
}

/// A pool of query texts covering the interesting component shapes:
/// loners, stuck queries, mutually-entangled pairs and triangles, a
/// star (several queries waiting on one hub), and *unsafe* triples (two
/// queries whose heads both unify with a third's postcondition) that
/// can only coordinate after a cancellation makes them safe again.
std::vector<std::string> MakeQueryPool(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> texts;
  int group = 0;
  size_t num_groups = 6 + rng.NextBounded(5);
  for (size_t g = 0; g < num_groups; ++g) {
    const std::string rel = "G" + std::to_string(group++);
    const std::string handle =
        "'user" + std::to_string(rng.NextBounded(8)) + "'";
    switch (rng.NextBounded(6)) {
      case 0:  // loner
        texts.push_back(rel + "solo: { } " + rel + "(s) :- Users(s, " +
                        handle + ").");
        break;
      case 1:  // stuck: postcondition nobody answers
        texts.push_back(rel + "stuck: { Nobody" + rel + "(m) } " + rel +
                        "(s) :- Users(s, " + handle + ").");
        break;
      case 2:  // pair
        texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                        "(A, x) :- Users(x, " + handle + ").");
        texts.push_back(rel + "b: { " + rel + "(A, y) } " + rel +
                        "(B, y) :- Users(y, " + handle + ").");
        break;
      case 3:  // triangle
        texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                        "(A, x) :- Users(x, " + handle + ").");
        texts.push_back(rel + "b: { " + rel + "(Cc, y) } " + rel +
                        "(B, y) :- Users(y, " + handle + ").");
        texts.push_back(rel + "c: { " + rel + "(A, z) } " + rel +
                        "(Cc, z) :- Users(z, " + handle + ").");
        break;
      case 4:  // star: two spokes waiting on one hub
        texts.push_back(rel + "hub: { } " + rel + "(Hub, h) :- Users(h, " +
                        handle + ").");
        texts.push_back(rel + "s1: { " + rel + "(Hub, x) } " + rel +
                        "(S1, x) :- Users(x, " + handle + ").");
        texts.push_back(rel + "s2: { " + rel + "(Hub, y) } " + rel +
                        "(S2, y) :- Users(y, " + handle + ").");
        break;
      default:  // unsafe triple: post of `a` matches both heads
        texts.push_back(rel + "a: { " + rel + "(B, x) } " + rel +
                        "(A, x) :- Users(x, " + handle + ").");
        texts.push_back(rel + "b1: { " + rel + "(A, y) } " + rel +
                        "(B, y) :- Users(y, " + handle + ").");
        texts.push_back(rel + "b2: { " + rel + "(A, z) } " + rel +
                        "(B, z) :- Users(z, " + handle + ").");
        break;
    }
  }
  return texts;
}

/// The randomized interleaving, engine-agnostic: submit the next pooled
/// query, cancel a pending query (picked by rank so both engines cancel
/// the same id), or flush.
struct Op {
  enum Kind { kSubmit, kCancel, kFlush } kind;
  size_t rank = 0;  // kCancel: index into the sorted pending list
};

std::vector<Op> MakeOps(uint64_t seed, size_t num_submits) {
  Rng rng(seed);
  std::vector<Op> ops;
  size_t submitted = 0;
  while (submitted < num_submits) {
    uint64_t draw = rng.NextBounded(10);
    if (draw < 7) {
      ops.push_back({Op::kSubmit, 0});
      ++submitted;
    } else if (draw < 9) {
      ops.push_back({Op::kCancel, static_cast<size_t>(rng.NextBounded(64))});
    } else {
      ops.push_back({Op::kFlush, 0});
    }
  }
  ops.push_back({Op::kFlush, 0});
  return ops;
}

struct RunResult {
  std::vector<LoggedDelivery> log;
  std::vector<QueryId> final_pending;
  uint64_t coordinating_sets = 0;
  uint64_t cancelled = 0;
};

RunResult RunInterleaving(const Database& db, EngineOptions options,
                          const std::vector<std::string>& texts,
                          const std::vector<Op>& ops) {
  CoordinationEngine engine(&db, options);
  RunResult run;
  engine.set_delivery_callback([&](const Delivery& delivery) {
    // Every delivery must also be independently valid (Def. 1).
    CoordinationSolution solution = SolutionFromDelivery(delivery);
    EXPECT_TRUE(ValidateSolution(db, engine.queries(), solution).ok());
    run.log.push_back(LoggedDelivery{std::move(solution.queries),
                                     std::move(solution.assignment)});
  });
  size_t next_text = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kSubmit: {
        auto id = engine.Submit(texts[next_text++]);
        EXPECT_TRUE(id.ok()) << id.status();
        break;
      }
      case Op::kCancel: {
        std::vector<QueryId> pending = engine.PendingQueries();
        if (pending.empty()) break;
        engine.Cancel(pending[op.rank % pending.size()]);
        break;
      }
      case Op::kFlush:
        engine.Flush();
        break;
    }
  }
  run.final_pending = engine.PendingQueries();
  run.coordinating_sets = engine.stats().coordinating_sets;
  run.cancelled = engine.stats().cancelled;
  return run;
}

class EngineDifferential : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_P(EngineDifferential, IncrementalMatchesFromScratchRebuild) {
  const uint64_t seed = GetParam();
  std::vector<std::string> texts = MakeQueryPool(seed * 977);
  std::vector<Op> ops = MakeOps(seed * 131, texts.size());

  for (size_t evaluate_every : {size_t{0}, size_t{1}, size_t{3}}) {
    EngineOptions incremental;
    incremental.evaluate_every = evaluate_every;
    incremental.incremental = true;
    EngineOptions rebuild = incremental;
    rebuild.incremental = false;

    RunResult a = RunInterleaving(db_, incremental, texts, ops);
    RunResult b = RunInterleaving(db_, rebuild, texts, ops);

    EXPECT_EQ(a.log.size(), b.log.size())
        << "evaluate_every=" << evaluate_every;
    EXPECT_EQ(a.log, b.log)
        << "evaluate_every=" << evaluate_every << "\nincremental: "
        << DeliveryLogToString(a.log)
        << "\nrebuild:     " << DeliveryLogToString(b.log);
    EXPECT_EQ(a.final_pending, b.final_pending)
        << "evaluate_every=" << evaluate_every;
    EXPECT_EQ(a.coordinating_sets, b.coordinating_sets);
    EXPECT_EQ(a.cancelled, b.cancelled);
  }
}

TEST_P(EngineDifferential, ParallelFlushIsThreadCountInvariant) {
  const uint64_t seed = GetParam();
  std::vector<std::string> texts = MakeQueryPool(seed * 977);
  std::vector<Op> ops = MakeOps(seed * 131, texts.size());

  EngineOptions serial;
  serial.evaluate_every = 0;  // exercise Flush() heavily
  serial.flush_threads = 1;
  EngineOptions pooled = serial;
  pooled.flush_threads = 4;

  RunResult a = RunInterleaving(db_, serial, texts, ops);
  RunResult b = RunInterleaving(db_, pooled, texts, ops);
  EXPECT_EQ(a.log, b.log) << "1 thread:  " << DeliveryLogToString(a.log)
                          << "\n4 threads: " << DeliveryLogToString(b.log);
  EXPECT_EQ(a.final_pending, b.final_pending);
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, EngineDifferential,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// ---------------------------------------------------------------------------
// Directed coverage of the new entry points.
// ---------------------------------------------------------------------------

class EngineIncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }
  Database db_;
};

TEST_F(EngineIncrementalTest, SubmitBatchDeliversOnce) {
  CoordinationEngine engine(&db_);
  size_t deliveries = 0;
  engine.set_delivery_callback([&](const Delivery&) { ++deliveries; });
  auto ids = engine.SubmitBatch({
      "a: { R(B, x) } R(A, x) :- Users(x, 'user1').",
      "b: { R(A, y) } R(B, y) :- Users(y, 'user1').",
      "solo: { } K(w) :- Users(w, 'user5').",
  });
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids->size(), 3u);
  // The pair and the loner both coordinate during the batch's flush.
  EXPECT_EQ(deliveries, 2u);
  EXPECT_TRUE(engine.PendingQueries().empty());
  EXPECT_EQ(engine.stats().submitted, 3u);
}

TEST_F(EngineIncrementalTest, SubmitBatchIsAllOrNothing) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  auto ids = engine.SubmitBatch({
      "a: { R(B, x) } R(A, x) :- Users(x, 'user1').",
      "this is not a query",
  });
  EXPECT_FALSE(ids.ok());
  // A mid-batch parse error admits nothing: no orphaned pending
  // queries whose ids the caller never received.
  EXPECT_TRUE(engine.PendingQueries().empty());
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST_F(EngineIncrementalTest, SubmitRejectsMultiQueryTextAtomically) {
  CoordinationEngine engine(&db_);
  auto bad = engine.Submit(
      "a: { } K(x) :- Users(x, 'user1'). b: { } K(y) :- Users(y, 'user1').");
  EXPECT_FALSE(bad.ok());
  // Neither query of the rejected text leaked into the master set.
  EXPECT_EQ(engine.queries().size(), 0u);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST_F(EngineIncrementalTest, CallbackReentryIsRejected) {
  CoordinationEngine engine(&db_);
  engine.set_delivery_callback([&engine](const Delivery&) {
    engine.Flush();  // illegal: deliveries must not re-enter
  });
  EXPECT_DEATH(engine.Submit("solo: { } K(w) :- Users(w, 'user5')."),
               "must not re-enter");
}

TEST_F(EngineIncrementalTest, CancelUnblocksUnsafeComponent) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  size_t deliveries = 0;
  engine.set_delivery_callback([&](const Delivery&) { ++deliveries; });
  // a's postcondition unifies with both b1's and b2's head: unsafe.
  auto a = engine.Submit("a: { U(B, x) } U(A, x) :- Users(x, 'user1').");
  auto b1 = engine.Submit("b1: { U(A, y) } U(B, y) :- Users(y, 'user1').");
  auto b2 = engine.Submit("b2: { U(A, z) } U(B, z) :- Users(z, 'user1').");
  ASSERT_TRUE(a.ok() && b1.ok() && b2.ok());
  EXPECT_EQ(engine.Flush(), 0u);
  EXPECT_EQ(engine.stats().unsafe_components, 1u);
  EXPECT_EQ(engine.ComponentOf(*a).size(), 3u);

  // Withdrawing one of the clashing heads makes the component safe
  // again; the remaining pair coordinates on the next flush.
  EXPECT_TRUE(engine.Cancel(*b2));
  EXPECT_FALSE(engine.Cancel(*b2));  // already gone
  EXPECT_EQ(engine.Flush(), 1u);
  EXPECT_EQ(deliveries, 1u);
  EXPECT_FALSE(engine.IsPending(*a));
  EXPECT_FALSE(engine.IsPending(*b1));
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST_F(EngineIncrementalTest, ComponentOfIsMaintainedIncrementally) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  auto a = engine.Submit("a: { P(B, x) } P(A, x) :- Users(x, 'user1').");
  auto b = engine.Submit("b: { Q(D, y) } Q(C, y) :- Users(y, 'user1').");
  ASSERT_TRUE(a.ok() && b.ok());
  // Distinct answer relations: separate components.
  EXPECT_EQ(engine.ComponentOf(*a), (std::vector<QueryId>{*a}));
  EXPECT_EQ(engine.ComponentOf(*b), (std::vector<QueryId>{*b}));
  // A bridge entangled with both merges them.
  auto c = engine.Submit(
      "c: { P(A, z), Q(C, w) } P(B, z), Q(D, w) :- Users(z, 'user1'), "
      "Users(w, 'user1').");
  ASSERT_TRUE(c.ok()) << c.status();
  std::vector<QueryId> expected{*a, *b, *c};
  EXPECT_EQ(engine.ComponentOf(*a), expected);
  EXPECT_EQ(engine.ComponentOf(*b), expected);
  EXPECT_EQ(engine.ComponentOf(*c), expected);
}

TEST_F(EngineIncrementalTest, FlushSkipsCleanComponents) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  // A stuck query: evaluated once, then provably still stuck.
  ASSERT_TRUE(
      engine.Submit("stuck: { Nobody(m) } W(s) :- Users(s, 'user1').").ok());
  EXPECT_EQ(engine.Flush(), 0u);
  const uint64_t evals_after_first = engine.stats().evaluations;
  EXPECT_EQ(engine.Flush(), 0u);
  // Untouched component: the second flush re-examined nothing.
  EXPECT_EQ(engine.stats().evaluations, evals_after_first);
  // The from-scratch path re-evaluates it every time.
  EngineOptions rebuild = options;
  rebuild.incremental = false;
  CoordinationEngine reference(&db_, rebuild);
  ASSERT_TRUE(
      reference.Submit("stuck: { Nobody(m) } W(s) :- Users(s, 'user1').")
          .ok());
  reference.Flush();
  const uint64_t ref_evals = reference.stats().evaluations;
  reference.Flush();
  EXPECT_GT(reference.stats().evaluations, ref_evals);
}

}  // namespace
}  // namespace entangled
