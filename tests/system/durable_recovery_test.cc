// Kill-and-rehydrate through the session front door (the full
// production stack: SessionManager over DurableCoordinationService
// over a single or sharded engine).  A scripted two-session scenario is
// crashed at every step boundary; the rehydrated stack must resume —
// same session ownership, same pending sets, delivery sequences
// *resumed* rather than restarted — and the concatenated per-session
// event streams must be byte-identical to an uninterrupted oracle run.
// A second recovery of the already-recovered directory must read back
// clean (double-recovery idempotence).

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "db/database.h"
#include "db/value.h"
#include "storage/durable_service.h"
#include "storage/snapshot.h"
#include "system/engine.h"
#include "system/sharded_engine.h"

namespace entangled {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/entangled_durrec_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    DIR* dir = opendir(path_.c_str());
    if (dir != nullptr) {
      while (dirent* entry = readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void FillFacts(Database* db) {
  Relation* flights = *db->CreateRelation("Flights", {"flightId", "dest"});
  flights->Insert({Value::Int(101), Value::Str("Zurich")});
  flights->Insert({Value::Int(102), Value::Str("Geneva")});
}

std::unique_ptr<CoordinationService> MakeInner(const Database* db,
                                               bool sharded) {
  if (sharded) {
    ShardedEngineOptions options;
    options.engine.incremental = true;
    options.engine.evaluate_every = 1;
    options.shard_threads = 2;
    return std::make_unique<ShardedCoordinationEngine>(db, options);
  }
  EngineOptions options;
  options.incremental = true;
  options.evaluate_every = 1;
  return std::make_unique<CoordinationEngine>(db, options);
}

/// One full stack: facts, engine, optional durability decorator,
/// session manager, two open sessions.
struct Stack {
  Database db;
  std::unique_ptr<CoordinationService> inner;
  std::unique_ptr<DurableCoordinationService> durable;
  std::unique_ptr<SessionManager> manager;
  ClientSession* a = nullptr;
  ClientSession* b = nullptr;

  CoordinationService* front() {
    return durable != nullptr
               ? static_cast<CoordinationService*>(durable.get())
               : inner.get();
  }
};

/// Oracle (no durability) or fresh durable stack over an empty dir.
void BuildFresh(Stack* stack, bool sharded, const std::string& dir) {
  FillFacts(&stack->db);
  stack->inner = MakeInner(&stack->db, sharded);
  if (!dir.empty()) {
    DurabilityOptions durability;
    durability.dir = dir;
    durability.fsync = FsyncPolicy::kNone;
    durability.snapshot_every_events = 3;  // rotate mid-scenario
    durability.initial_evaluate_every = 1;
    auto durable =
        DurableCoordinationService::Create(stack->inner.get(), &stack->db,
                                           durability);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    stack->durable = std::move(*durable);
  }
  stack->manager = std::make_unique<SessionManager>(stack->front());
  stack->a = stack->manager->Open();
  stack->b = stack->manager->Open();
}

/// Rehydrates `dir` into a fresh stack: rebuild facts from the chosen
/// snapshot, rebuild the engine over them, re-wire the decorator and
/// manager, reopen both sessions (ids 0 and 1, matching the recorded
/// tags), then Recover.
void BuildRecovered(Stack* stack, bool sharded, const std::string& dir) {
  auto state = ReadDurableState(dir);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  ASSERT_TRUE(
      BuildDatabaseFromSnapshot(state->snapshot, &stack->db).ok());
  stack->inner = MakeInner(&stack->db, sharded);
  DurabilityOptions durability;
  durability.dir = dir;
  durability.fsync = FsyncPolicy::kNone;
  durability.snapshot_every_events = 3;
  durability.initial_evaluate_every = 1;
  auto durable = DurableCoordinationService::Create(stack->inner.get(),
                                                    &stack->db, durability);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  stack->durable = std::move(*durable);
  stack->manager = std::make_unique<SessionManager>(stack->durable.get());
  stack->a = stack->manager->Open();
  stack->b = stack->manager->Open();
  Status recovered =
      stack->durable->Recover(std::move(*state), stack->manager.get());
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  const RecoveryReport& report = stack->durable->recovery_report();
  EXPECT_FALSE(report.corruption_detected) << report.ToString();
  EXPECT_EQ(report.anomalies, 0u) << report.ToString();
}

/// One observed session event, deep-copied for stream comparison.
struct Seen {
  SessionId session = -1;
  uint64_t sequence = 0;
  std::vector<QueryId> set;
  std::vector<QueryId> own;

  bool operator==(const Seen& other) const {
    return session == other.session && sequence == other.sequence &&
           set == other.set && own == other.own;
  }
};

void DrainInto(Stack* stack, std::vector<Seen>* out) {
  for (ClientSession* session : {stack->a, stack->b}) {
    for (const SessionEvent& event : session->PollEvents()) {
      Seen one;
      one.session = event.session;
      one.sequence = event.delivery->sequence;
      one.set = event.delivery->QueryIds();
      one.own = event.own_queries;
      out->push_back(one);
    }
  }
}

/// The scripted scenario, one step per index: cross-session
/// coordinating pairs, stuck queries, a cancel, a cadence change, and a
/// batch, so a crash at any boundary lands in interesting state.
constexpr size_t kSteps = 8;

void RunStep(size_t step, Stack* stack) {
  switch (step) {
    case 0:
      ASSERT_TRUE(stack->a->Submit(
          "q0: { R(B, x) } R(A, x) :- Flights(x, Zurich)."));
      break;
    case 1:  // completes the pair -> delivery #0, one event per session
      ASSERT_TRUE(stack->b->Submit(
          "q1: { } R(B, y) :- Flights(y, Zurich)."));
      break;
    case 2:  // stuck: nobody ever heads R(Ghost, _)
      ASSERT_TRUE(stack->a->Submit(
          "q2: { R(Ghost, z) } R(S, z) :- Flights(z, Zurich)."));
      break;
    case 3:
      ASSERT_TRUE(stack->b->Submit(
          "q3: { R(Ghost, w) } R(T, w) :- Flights(w, Geneva)."));
      break;
    case 4:
      ASSERT_TRUE(stack->b->Cancel(3));
      break;
    case 5:  // cadence change rides the log; recovery must mirror it
      stack->manager->set_evaluate_every(2);
      break;
    case 6: {  // same-session batch pair -> delivery #1
      BatchOutcome batch = stack->a->SubmitBatch(
          {"q4: { R(D, u) } R(C, u) :- Flights(u, Zurich).",
           "q5: { } R(D, v) :- Flights(v, Zurich)."});
      ASSERT_TRUE(batch);
      break;
    }
    case 7:  // another stuck query under the changed cadence
      ASSERT_TRUE(stack->b->Submit(
          "q6: { R(Ghost, t) } R(U, t) :- Flights(t, Zurich)."));
      break;
    default:
      FAIL() << "no step " << step;
  }
}

struct RunResult {
  std::vector<Seen> events;
  std::vector<QueryId> pending;    ///< service-wide, ascending
  std::vector<QueryId> pending_a;  ///< session a's slice
  std::vector<QueryId> pending_b;
};

void FinishRun(Stack* stack, RunResult* out) {
  out->pending = stack->front()->PendingQueries();
  out->pending_a = stack->a->PendingQueries();
  out->pending_b = stack->b->PendingQueries();
}

void RunOracle(bool sharded, RunResult* out) {
  Stack stack;
  BuildFresh(&stack, sharded, "");
  if (::testing::Test::HasFatalFailure()) return;
  for (size_t step = 0; step < kSteps; ++step) {
    RunStep(step, &stack);
    if (::testing::Test::HasFatalFailure()) return;
    DrainInto(&stack, &out->events);
  }
  FinishRun(&stack, out);
}

void RunWithCrash(bool sharded, size_t crash_step, const std::string& dir,
                  RunResult* out) {
  {
    Stack stack;
    BuildFresh(&stack, sharded, dir);
    if (::testing::Test::HasFatalFailure()) return;
    for (size_t step = 0; step < crash_step; ++step) {
      RunStep(step, &stack);
      if (::testing::Test::HasFatalFailure()) return;
      DrainInto(&stack, &out->events);
    }
    // Crash: destructors only — no rotation, no clean shutdown.
  }
  Stack stack;
  BuildRecovered(&stack, sharded, dir);
  if (::testing::Test::HasFatalFailure()) return;
  for (size_t step = crash_step; step < kSteps; ++step) {
    RunStep(step, &stack);
    if (::testing::Test::HasFatalFailure()) return;
    DrainInto(&stack, &out->events);
  }
  FinishRun(&stack, out);
}

void ExpectRunsEqual(const RunResult& oracle, const RunResult& crashed,
                     size_t crash_step) {
  ASSERT_EQ(oracle.events.size(), crashed.events.size())
      << "crash_step=" << crash_step;
  for (size_t i = 0; i < oracle.events.size(); ++i) {
    EXPECT_TRUE(oracle.events[i] == crashed.events[i])
        << "crash_step=" << crash_step << " event " << i
        << " diverged (session " << oracle.events[i].session << " vs "
        << crashed.events[i].session << ", sequence "
        << oracle.events[i].sequence << " vs "
        << crashed.events[i].sequence << ")";
  }
  EXPECT_EQ(oracle.pending, crashed.pending) << "crash_step=" << crash_step;
  EXPECT_EQ(oracle.pending_a, crashed.pending_a)
      << "crash_step=" << crash_step;
  EXPECT_EQ(oracle.pending_b, crashed.pending_b)
      << "crash_step=" << crash_step;
}

class DurableRecoveryTest : public ::testing::TestWithParam<bool> {};

TEST_P(DurableRecoveryTest, CrashAtEveryStepBoundaryMatchesTheOracle) {
  const bool sharded = GetParam();
  RunResult oracle;
  RunOracle(sharded, &oracle);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_FALSE(oracle.events.empty());
  for (size_t crash_step = 0; crash_step <= kSteps; ++crash_step) {
    TempDir dir;
    RunResult crashed;
    RunWithCrash(sharded, crash_step, dir.path(), &crashed);
    ASSERT_FALSE(::testing::Test::HasFatalFailure())
        << "crash_step=" << crash_step;
    ExpectRunsEqual(oracle, crashed, crash_step);
  }
}

TEST_P(DurableRecoveryTest, SequencesResumeAcrossTheCrash) {
  const bool sharded = GetParam();
  TempDir dir;
  RunResult crashed;
  // Crash between the two deliveries: sequence 0 fires pre-crash,
  // sequence 1 post-recovery — a restart would hand out 0 again.
  RunWithCrash(sharded, 4, dir.path(), &crashed);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  std::vector<uint64_t> sequences;
  for (const Seen& seen : crashed.events) {
    if (sequences.empty() || seen.sequence != sequences.back()) {
      sequences.push_back(seen.sequence);
    }
  }
  EXPECT_EQ(sequences, (std::vector<uint64_t>{0, 1}));
}

TEST_P(DurableRecoveryTest, DoubleRecoveryIsIdempotent) {
  const bool sharded = GetParam();
  TempDir dir;
  RunResult crashed;
  RunWithCrash(sharded, 5, dir.path(), &crashed);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  // The run above ended with a live recovered service that was itself
  // destroyed uncleanly (FinishRun then scope exit).  Recover the same
  // directory twice more; each pass must land on the identical state
  // and a clean report.
  for (int pass = 0; pass < 2; ++pass) {
    Stack stack;
    BuildRecovered(&stack, sharded, dir.path());
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "pass " << pass;
    const RecoveryReport& report = stack.durable->recovery_report();
    EXPECT_FALSE(report.torn_tail) << "pass " << pass;
    EXPECT_EQ(report.snapshots_skipped, 0u) << "pass " << pass;
    EXPECT_EQ(stack.front()->PendingQueries(), crashed.pending)
        << "pass " << pass;
    EXPECT_EQ(stack.a->PendingQueries(), crashed.pending_a)
        << "pass " << pass;
    EXPECT_EQ(stack.b->PendingQueries(), crashed.pending_b)
        << "pass " << pass;
    // No pre-crash delivery may be re-forwarded: the sessions polled
    // everything before the crash, so a recovered session buffer must
    // start empty.
    EXPECT_EQ(stack.a->num_buffered_events(), 0u) << "pass " << pass;
    EXPECT_EQ(stack.b->num_buffered_events(), 0u) << "pass " << pass;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DurableRecoveryTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sharded" : "Incremental";
                         });

}  // namespace
}  // namespace entangled
