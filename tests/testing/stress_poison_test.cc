// Negative coverage for the delta-evaluation cache: the stress harness
// must *fail* when the skip fingerprint is deliberately corrupted.
// EngineFaultInjection::poison_eval_cache makes CanSkipEvaluation
// ignore membership changes, so a component that cleanly failed once
// keeps skipping the solver even after an arrival makes it deliverable
// — the incremental engine silently misses deliveries the oracle makes,
// and the harness has to report the divergence and shrink the stream.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/stress_harness.h"
#include "workload/generator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

WorkloadEvent Submit(const std::string& text) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kSubmit;
  event.texts = {text};
  return event;
}

WorkloadEvent Flush() {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kFlush;
  return event;
}

WorkloadEvent EvalEvery(size_t n) {
  WorkloadEvent event;
  event.kind = WorkloadEvent::Kind::kSetEvaluateEvery;
  event.evaluate_every = n;
  return event;
}

class StressPoisonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  /// `a` fails alone (its postcondition unifies with no head), arming
  /// the clean-failure fingerprint; `b` then closes the cycle and makes
  /// {a, b} deliverable.  A poisoned cache ignores the membership
  /// change, sees unchanged relation stamps, and skips the very
  /// evaluation that would deliver.
  std::vector<WorkloadEvent> FailThenCompleteStream() {
    return {
        EvalEvery(0),
        Submit("a: { U(B, x) } U(A, x) :- Users(x, 'user1')."),
        Flush(),  // no coordinating set: clean failure memoized
        Submit("b: { U(A, y) } U(B, y) :- Users(y, 'user1')."),
        Flush(),  // oracle delivers {a, b}; poisoned engine skips
    };
  }

  Database db_;
};

TEST_F(StressPoisonTest, CleanEnginePassesDirectedStream) {
  StressHarness harness;
  StressReport report = harness.VerifyEvents(db_, FailThenCompleteStream());
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.deliveries, 1u);
}

TEST_F(StressPoisonTest, InjectedFaultIsCaughtAndShrunk) {
  StressOptions options;
  options.fault.poison_eval_cache = true;
  StressHarness harness(options);
  StressReport report = harness.VerifyEvents(db_, FailThenCompleteStream());
  ASSERT_FALSE(report.ok)
      << "a poisoned eval cache must surface as a differential failure";
  // The divergence is a missed delivery, reported against the oracle.
  EXPECT_NE(report.failure.find("coordinating sets"), std::string::npos)
      << report.failure;
  EXPECT_GT(report.shrunk_events, 0u);
  EXPECT_LE(report.shrunk_events, FailThenCompleteStream().size() + 1);
  EXPECT_NE(report.reproduction.find("STRESS_REPRO"), std::string::npos);
  EXPECT_NE(report.reproduction.find("FLUSH"), std::string::npos)
      << report.reproduction;
}

TEST_F(StressPoisonTest, GeneratedScenariosCatchTheFaultToo) {
  // Purely generated workloads must catch it as well: growing chain
  // components fail until the last link arrives, so a poisoned skip
  // suppresses the completing evaluation on most seeds.
  GeneratorOptions gen;
  gen.topology = GraphTopology::kChain;
  gen.num_queries = 24;
  gen.cancel_rate = 0.5;
  gen.unsafe_rate = 0.4;
  gen.min_group = 3;

  StressOptions faulty;
  faulty.fault.poison_eval_cache = true;
  faulty.run_metamorphic = false;  // the base differential is the point
  StressHarness faulty_harness(faulty);
  StressHarness clean_harness;

  bool caught = false;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    gen.seed = seed;
    StressReport clean = clean_harness.RunScenario(gen);
    EXPECT_TRUE(clean.ok) << "seed " << seed
                          << " must pass without the fault: " << clean.failure;
    StressReport report = faulty_harness.RunScenario(gen);
    if (!report.ok) {
      caught = true;
      EXPECT_NE(report.reproduction.find("STRESS_REPRO"), std::string::npos);
      EXPECT_LE(report.shrunk_events, report.events + 1);
      break;
    }
  }
  EXPECT_TRUE(caught)
      << "no chain seed in 1..12 exposed the poisoned eval cache";
}

}  // namespace
}  // namespace entangled
