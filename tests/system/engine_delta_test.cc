// Directed coverage for delta-aware evaluation
// (EngineOptions::delta_eval): the cache-invalidation edges.  Each test
// drives a stream where a stale cache would change the output — a
// cancelled memoized member, a relation mutated between flushes, a
// memoized component migrated between engines, a shard merge — and
// asserts delta_eval = true still matches the plain path byte for byte
// while the cache counters show the machinery actually engaged.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/binding.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "testing/stress_harness.h"
#include "workload/generator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

struct LoggedDelivery {
  std::vector<QueryId> queries;
  Binding assignment;

  friend bool operator==(const LoggedDelivery& a, const LoggedDelivery& b) {
    return a.queries == b.queries && a.assignment == b.assignment;
  }
};

void LogDeliveries(CoordinationService* engine,
                   std::vector<LoggedDelivery>* log) {
  engine->set_delivery_callback([log](const Delivery& delivery) {
    log->push_back(LoggedDelivery{delivery.QueryIds(), delivery.witness});
  });
}

class EngineDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  static EngineOptions Delta(bool on) {
    EngineOptions options;
    options.incremental = true;
    options.evaluate_every = 0;
    options.delta_eval = on;
    return options;
  }

  Database db_;
};

TEST_F(EngineDeltaTest, CancelOfMemoizedMemberInvalidates) {
  // An unsafe triple fails its first flush (the verdict is memoized);
  // cancelling one clashing head must drop the memo so the next flush
  // evaluates the repartitioned pair and delivers it.
  for (bool delta : {false, true}) {
    CoordinationEngine engine(&db_, Delta(delta));
    std::vector<LoggedDelivery> log;
    LogDeliveries(&engine, &log);
    ASSERT_TRUE(
        engine.Submit("a: { U(B, x) } U(A, x) :- Users(x, 'user1').").ok());
    ASSERT_TRUE(
        engine.Submit("b1: { U(A, y) } U(B, y) :- Users(y, 'user1').").ok());
    ASSERT_TRUE(
        engine.Submit("b2: { U(A, z) } U(B, z) :- Users(z, 'user1').").ok());
    EXPECT_EQ(engine.Flush(), 0u);  // unsafe: nothing delivered
    EXPECT_TRUE(engine.Cancel(2));
    EXPECT_EQ(engine.Flush(), 1u);
    ASSERT_EQ(log.size(), 1u) << "delta=" << delta;
    EXPECT_EQ(log[0].queries, (std::vector<QueryId>{0, 1}));
    // The memoized failure was discarded with the cancel, never reused.
    EXPECT_EQ(engine.stats().evaluations_avoided, 0u);
    EXPECT_EQ(engine.stats().evaluations, 2u);
  }
}

TEST_F(EngineDeltaTest, RelationMutationBetweenFlushesReevaluates) {
  // Two stuck components: one reads Users, one reads the (empty)
  // Extra relation.  Inserting into Extra between flushes must
  // re-evaluate exactly the Extra component — the Users component's
  // stamps are current, so its re-check is skipped — and the insert
  // must flip the Extra pair to deliverable.
  auto* extra = db_.CreateRelation("Extra", {"v"}).value();

  CoordinationEngine engine(&db_, Delta(true));
  std::vector<LoggedDelivery> log;
  LogDeliveries(&engine, &log);
  ASSERT_TRUE(
      engine.Submit("ua: { U(Done, x) } U(T, x) :- Users(x, 'user1').").ok());
  ASSERT_TRUE(engine.Submit("ea: { E(B, x) } E(A, x) :- Extra(x).").ok());
  ASSERT_TRUE(engine.Submit("eb: { E(A, y) } E(B, y) :- Extra(y).").ok());
  EXPECT_EQ(engine.Flush(), 0u);  // both components fail cleanly
  EXPECT_EQ(engine.stats().evaluations, 2u);
  EXPECT_EQ(engine.stats().evaluations_avoided, 0u);

  ASSERT_TRUE(extra->Insert({Value::Str("now")}).ok());
  EXPECT_EQ(engine.Flush(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].queries, (std::vector<QueryId>{1, 2}));
  // The mutation dirtied every live component, but only the Extra pair
  // was actually re-solved; the Users singleton skipped via its stamps.
  EXPECT_EQ(engine.stats().evaluations, 3u);
  EXPECT_EQ(engine.stats().evaluations_avoided, 1u);

  // An untouched database re-flushes to nothing at all.
  EXPECT_EQ(engine.Flush(), 0u);
  EXPECT_EQ(engine.stats().evaluations, 3u);
  EXPECT_EQ(engine.stats().evaluations_avoided, 1u);
}

TEST_F(EngineDeltaTest, MigrationDropsMemoizedState) {
  // A memoized clean failure must not follow the queries through an
  // ExtractPending()/AdoptPending() migration: the adopting engine
  // rebuilds from scratch and delivers once the missing partner lands.
  CoordinationEngine source(&db_, Delta(true));
  ASSERT_TRUE(
      source.Submit("a: { U(B, x) } U(A, x) :- Users(x, 'user1').").ok());
  EXPECT_EQ(source.Flush(), 0u);  // clean failure memoized in `source`
  EXPECT_EQ(source.stats().evaluations, 1u);

  CoordinationEngine::PendingExtract extract = source.ExtractPending();
  ASSERT_EQ(extract.original, (std::vector<QueryId>{0}));

  CoordinationEngine target(&db_, Delta(true));
  std::vector<LoggedDelivery> log;
  LogDeliveries(&target, &log);
  target.AdoptPending(extract.queries, {0}, nullptr);
  ASSERT_TRUE(
      target.Submit("b: { U(A, y) } U(B, y) :- Users(y, 'user1').").ok());
  EXPECT_EQ(target.Flush(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].queries, (std::vector<QueryId>{0, 1}));
  EXPECT_EQ(target.stats().evaluations_avoided, 0u);
}

TEST_F(EngineDeltaTest, ShardMergeByMigrationMatchesSingleEngine) {
  // Two stuck pairs memoize failures in separate shards; a bridge
  // forces a merge-by-migration; a late partner then completes one
  // pair.  The sharded delta engine must match a plain single engine
  // byte for byte across the whole stream.
  auto drive = [&](CoordinationService* engine,
                   std::vector<LoggedDelivery>* log) {
    LogDeliveries(engine, log);
    engine->set_evaluate_every(0);
    ASSERT_TRUE(
        engine->Submit("sa: { S(B, x) } S(A, x) :- Users(x, 'user3').").ok());
    ASSERT_TRUE(
        engine->Submit("ra: { R(B, x) } R(A, x) :- Users(x, 'user3').").ok());
    engine->Flush();  // both fail; verdicts memoized per shard
    // The bridge's postconditions span both relations, merging the two
    // components (and, sharded, migrating them into one shard).
    ASSERT_TRUE(engine
                    ->Submit("br: { S(A, x), R(A, x) } Q(T, x) :- "
                             "Users(x, 'user3').")
                    .ok());
    engine->Flush();  // still stuck (ra and br prune away)
    ASSERT_TRUE(
        engine->Submit("sb: { S(A, y) } S(B, y) :- Users(y, 'user3').").ok());
    engine->Flush();  // {sa, sb} completes
  };

  CoordinationEngine single(&db_, Delta(false));
  std::vector<LoggedDelivery> single_log;
  drive(&single, &single_log);
  ASSERT_EQ(single_log.size(), 1u);
  EXPECT_EQ(single_log[0].queries, (std::vector<QueryId>{0, 3}));

  for (size_t shard_threads : {size_t{1}, size_t{4}}) {
    ShardedEngineOptions options;
    options.engine = Delta(true);
    options.shard_threads = shard_threads;
    ShardedCoordinationEngine sharded(&db_, options);
    std::vector<LoggedDelivery> sharded_log;
    drive(&sharded, &sharded_log);
    ASSERT_EQ(sharded_log.size(), single_log.size())
        << "shard_threads=" << shard_threads;
    EXPECT_TRUE(sharded_log[0] == single_log[0]);
    EXPECT_EQ(sharded.PendingQueries(), single.PendingQueries());
  }
}

TEST(EngineDeltaRenameTest, RenamedSymbolsHitIdenticalCacheDecisions) {
  // Cache decisions key on structure (member sets, edges, relation
  // stamps), never on interned symbol spellings: replaying the same
  // stream under an injective symbol renaming (every relation name and
  // string constant prefixed) must reproduce the exact evaluation /
  // memo-hit / skip counters.  The stream grows a stuck cycle one
  // satellite at a time — each re-evaluation memo-hits the unchanged
  // tail SCCs — then mutates an unrelated relation so the final flush
  // skips the component entirely off its stamps.
  EngineStats stats[2];
  for (int renamed = 0; renamed < 2; ++renamed) {
    const std::string p = renamed ? "Rn" : "";  // injective symbol renaming
    Database db;
    ASSERT_TRUE(InstallSocialTable(&db, p + "Users", 16).ok());
    auto* aux = db.CreateRelation(p + "Aux", {"v"}).value();

    EngineOptions options;
    options.incremental = true;
    options.evaluate_every = 1;
    options.delta_eval = true;
    CoordinationEngine engine(&db, options);
    // A cycle whose combined body never grounds ('nouser' is absent):
    // the component fails cleanly and its sweep verdicts are memoized.
    ASSERT_TRUE(engine
                    .Submit("pa: { " + p + "P(B, x) } " + p + "P(A, x) :- " +
                            p + "Users(x, '" + p + "nouser').")
                    .ok());
    ASSERT_TRUE(engine
                    .Submit("pb: { " + p + "P(A, y) } " + p + "P(B, y) :- " +
                            p + "Users(y, '" + p + "nouser').")
                    .ok());
    // Satellites posting into the cycle: each arrival re-solves the
    // component, and every sweep step below the arrival is served from
    // the memo (identical R(c), identical stamps).
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(engine
                      .Submit("c" + std::to_string(i) + ": { " + p +
                              "P(A, z) } " + p + "P(C" + std::to_string(i) +
                              ", z) :- " + p + "Users(z, '" + p +
                              "nouser').")
                      .ok());
    }
    // Mutating an unrelated relation dirties the component (facts
    // changed), but its stamps are current: the flush skips it.
    ASSERT_TRUE(aux->Insert({Value::Str(p + "row")}).ok());
    engine.Flush();
    stats[renamed] = engine.stats();
  }
  EXPECT_EQ(stats[0].evaluations, stats[1].evaluations);
  EXPECT_EQ(stats[0].eval_cache_hits, stats[1].eval_cache_hits);
  EXPECT_EQ(stats[0].evaluations_avoided, stats[1].evaluations_avoided);
  EXPECT_EQ(stats[0].coordinating_sets, stats[1].coordinating_sets);
  EXPECT_EQ(stats[0].coordinating_sets, 0u);  // the cycle stays stuck
  EXPECT_GT(stats[0].eval_cache_hits, 0u);
  EXPECT_GT(stats[0].evaluations_avoided, 0u);
}

}  // namespace
}  // namespace entangled
