#ifndef ENTANGLED_TESTING_STRESS_HARNESS_H_
#define ENTANGLED_TESTING_STRESS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/generator.h"

namespace entangled {

/// \brief Options for StressHarness.
struct StressOptions {
  /// Incremental engine variants differentially compared against the
  /// from-scratch oracle (`EngineOptions::incremental = false`) on
  /// every scenario.  Each entry is a Flush() thread count.
  std::vector<size_t> flush_thread_counts = {1, 4};

  /// Intake-queue capacities crossed with every flush-thread count
  /// above (0 = inline admission, the historical path).  An armed
  /// intake defers admission to the next flush/read boundary, so this
  /// exercises the deferred-id prediction and drain replay against the
  /// same byte-identical contract.
  std::vector<size_t> intake_capacities = {0, 64};

  /// Flush chunk sizes crossed with the *multi-threaded* incremental
  /// variants (chunking never runs at flush_threads=1).  Chunk size is
  /// a pure scheduling knob; every value must produce the oracle's
  /// exact delivery log.
  std::vector<size_t> flush_chunks = {1, 8};

  /// ShardedCoordinationEngine variants additionally compared against
  /// the same oracle on every scenario (the sharded front door promises
  /// byte-identical delivery logs, witnesses, and pending sets at any
  /// shard-pool width).  Each entry is a shard-pool thread count; empty
  /// disables the sharded differential.
  std::vector<size_t> shard_thread_counts = {1, 4};

  /// Additionally replay every scenario through the session front door
  /// (api/session.h) wrapping each engine variant above — submissions
  /// round-robined across this many ClientSessions — and require (a)
  /// every session's push-callback stream to match its PollEvents()
  /// drain byte-for-byte, (b) the sessions' merged event stream to be
  /// byte-identical to the oracle's delivery log, and (c) per-session
  /// pending bookkeeping to tile the service's pending set.  0 disables
  /// the session differential.
  size_t session_count = 3;

  /// Arm every replayed session with this per-session pending quota
  /// (SessionOptions::max_pending; 0 disables the quota differential).
  /// When set, each scenario additionally replays through quota-armed
  /// sessions and requires (a) every bounced submission to be a *typed*
  /// kQuotaPending outcome, counted in the manager's metrics snapshot —
  /// no exceptions, no silent drops — and (b) the accepted queries'
  /// delivery stream to be byte-identical to an oracle fed only the
  /// accepted submissions (rejected texts never reach the service, so
  /// id assignment and rank-addressed cancels stay aligned).
  size_t quota_max_session_pending = 0;

  /// Run the metamorphic variants (within-batch permutation, relation
  /// row shuffling, symbol renaming) after the differential passes.
  bool run_metamorphic = true;

  /// On failure, shrink the event stream to a minimal failing prefix
  /// (binary search, then greedy single-event removal) and render it
  /// into StressReport::reproduction.
  bool shrink_on_failure = true;

  /// Replay budget for shrinking (each probe replays the oracle plus
  /// every incremental variant).
  size_t max_shrink_replays = 400;

  /// Injected into the *incremental* engines only (the oracle always
  /// runs clean).  Used by negative tests to prove the harness detects
  /// a deliberately-broken engine; see EngineFaultInjection.
  EngineFaultInjection fault;

  /// Additionally replay one sharded variant with the rebuild-merge
  /// baseline (`ShardedEngineOptions::rebuild_merges = true`) and hold
  /// it to the same byte-identical contract: merge mechanics — migrate
  /// the smaller sides into the survivor vs rebuild the union — must be
  /// unobservable in every output.
  bool cross_rebuild_merges = true;

  /// Additionally replay every scenario with delta-aware evaluation
  /// disabled (`EngineOptions::delta_eval = false`) — one incremental
  /// variant per flush-thread count plus one sharded variant — and hold
  /// those replays to the same byte-identical contract.  The default-on
  /// variants above exercise delta evaluation; this crossing proves the
  /// memo/skip machinery never *changes* an outcome relative to the
  /// plain incremental path.
  bool cross_delta_eval = true;

  /// Arm the kill-and-rehydrate differential (0 disables).  Selected
  /// variants — one inline incremental, one deferred-intake
  /// incremental, one sharded — are wrapped in a
  /// DurableCoordinationService over a throwaway storage directory and
  /// "crashed" (destroyed where they stand, no shutdown) after
  /// `crash_at_event % (events.size() + 1)` events; a fresh engine is
  /// then rehydrated from disk and runs the remainder.  The
  /// concatenation of the pre-crash and post-recovery delivery streams
  /// must be byte-identical — ids, witnesses, resumed sequences, final
  /// pending set — to the uninterrupted from-scratch oracle.
  size_t crash_at_event = 0;
};

/// \brief One recorded delivery: engine ids plus the witness.
struct StressDelivery {
  std::vector<QueryId> queries;
  Binding assignment;
};

/// \brief Everything one engine replay produced.
struct StressReplay {
  std::vector<StressDelivery> log;
  std::vector<QueryId> final_pending;
  size_t pending_count = 0;  ///< the engine's O(1) num_pending()
  EngineStats stats;
  std::string error;  ///< witness/parse failure inside the replay
};

/// \brief Replays `events` against `engine` (any CoordinationService —
/// single or sharded): Submit / SubmitBatch / rank-addressed Cancel /
/// set_evaluate_every / Flush.  The shared dispatch loop behind the
/// harness and bench_scenarios, so the event semantics (in particular
/// `cancel_rank % pending.size()` addressing) have exactly one
/// definition.  Returns an error description when the engine rejects a
/// generated query; empty string on success.
std::string ReplayWorkloadEvents(CoordinationService* engine,
                                 const std::vector<WorkloadEvent>& events);

/// \brief Outcome of one differentially-verified scenario.
struct StressReport {
  bool ok = true;
  std::string failure;       ///< first divergence, human-readable
  std::string reproduction;  ///< STRESS_REPRO block (set on failure)
  size_t events = 0;         ///< events in the generated stream
  size_t submitted = 0;      ///< query texts across submit events
  size_t deliveries = 0;     ///< coordinating sets the oracle delivered
  size_t shrunk_events = 0;  ///< events in the minimal reproduction
  size_t quota_bounces = 0;  ///< typed quota rejections in the armed run
};

/// \brief Replays generated workloads against the incremental engine
/// (per flush-thread-count variant) and the from-scratch oracle at
/// once, asserting identical coordinating sets in identical order with
/// identical witnesses, Definition-1 validity of every delivery, and
/// EngineStats invariants (e.g. coordinated_queries <= submitted -
/// cancelled).  Scenarios that pass are additionally re-run through
/// metamorphic transformations; scenarios that fail are shrunk to a
/// minimal failing event prefix rendered for reproduction.
class StressHarness {
 public:
  explicit StressHarness(StressOptions options = {});

  const StressOptions& options() const { return options_; }

  /// Generates the scenario described by `gen` (database + event
  /// stream) and verifies it end to end.
  StressReport RunScenario(const GeneratorOptions& gen) const;

  /// Differentially verifies a caller-supplied event stream against
  /// `db` (no metamorphic variants — those need the generator).  Used
  /// by directed tests, including the fault-injection negative tests.
  StressReport VerifyEvents(const Database& db,
                            const std::vector<WorkloadEvent>& events) const;

 private:
  /// Empty string when the differential + invariants pass; otherwise a
  /// description of the first divergence.  `oracle_deliveries`
  /// (optional) receives the oracle's coordinating-set count;
  /// `single_thread` (optional) receives the flush_threads=1 replay
  /// when that variant ran, so callers can reuse it.
  std::string CheckOnce(const Database& db,
                        const std::vector<WorkloadEvent>& events,
                        size_t* oracle_deliveries,
                        StressReplay* single_thread = nullptr,
                        size_t* quota_bounces = nullptr) const;

  /// Metamorphic variants compared against `base` (the scenario's
  /// flush_threads=1 replay); empty string when all hold.
  std::string RunMetamorphic(const GeneratorOptions& gen, const Database& db,
                             const GeneratedWorkload& workload,
                             const StressReplay& base) const;

  /// Shrinks a failing stream (budgeted); returns a stream that still
  /// fails CheckOnce (the input itself when shrinking cannot improve).
  std::vector<WorkloadEvent> Shrink(
      const Database& db, const std::vector<WorkloadEvent>& events) const;

  StressOptions options_;
};

/// Renders the reproduction block printed on failure:
///
///   STRESS_REPRO seed=7 topology=chain queries=24 events=5/63
///     [0] SUBMIT q0_0: { ... } ...
///     [1] CANCEL rank=3
///     [2] FLUSH
///
/// `gen` may be null for caller-supplied (directed) streams, which
/// have no generator metadata to reproduce from — the events listing
/// itself is the reproduction.
std::string FormatReproduction(const GeneratorOptions* gen,
                               const std::vector<WorkloadEvent>& events,
                               size_t original_events);

}  // namespace entangled

#endif  // ENTANGLED_TESTING_STRESS_HARNESS_H_
