#ifndef ENTANGLED_DB_VALUE_H_
#define ENTANGLED_DB_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/interner.h"

namespace entangled {

/// \brief A dynamically-typed database value: a 64-bit integer or an
/// interned string.
///
/// The coordination algorithms are schema-agnostic, so relations hold
/// dynamically typed tuples.  Strings are interned through the
/// process-wide GlobalValueInterner, which makes Value a trivially
/// copyable 16-byte POD: equality and hashing are O(1) integer
/// operations, and the evaluator's innermost loop (binding, index
/// probing, per-term matching) never touches heap-allocated string
/// storage.  Values order integers before strings (arbitrary but
/// total) and strings lexicographically, which makes sorted output —
/// and therefore the choose-1 witness the evaluator returns —
/// deterministic regardless of interning order.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1 };

  /// Default-constructs the integer 0 (needed for container resizing).
  constexpr Value() : int_(0), kind_(Kind::kInt) {}

  static Value Int(int64_t v) {
    Value value;
    value.kind_ = Kind::kInt;
    value.int_ = v;
    return value;
  }
  /// Interns `v` into the global value interner on first use.
  static Value Str(std::string_view v) {
    return Sym(GlobalValueInterner().Intern(v));
  }
  static Value Str(const std::string& v) {
    return Str(std::string_view(v));
  }
  static Value Str(const char* v) { return Str(std::string_view(v)); }
  /// Wraps an already-interned symbol of GlobalValueInterner.
  static Value Sym(Symbol symbol) {
    Value value;
    value.kind_ = Kind::kString;
    value.sym_ = symbol;
    return value;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Accessors; CHECK-fail on kind mismatch.
  int64_t AsInt() const;
  const std::string& AsString() const;
  /// The interned symbol of a string value; CHECK-fails on ints.
  Symbol AsSymbol() const;

  /// Renders the value; strings are quoted only when `quote` is set.
  std::string ToString(bool quote = false) const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    return a.kind_ == Kind::kInt ? a.int_ == b.int_ : a.sym_ == b.sym_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Ints before strings; strings compare lexicographically (two
  /// interner lookups — keep this off hot paths; equality and Hash are
  /// the O(1) operations).
  friend bool operator<(const Value& a, const Value& b);

  size_t Hash() const;

 private:
  union {
    int64_t int_;
    Symbol sym_;
  };
  Kind kind_;
};

static_assert(std::is_trivially_copyable_v<Value>,
              "Value must stay a trivially-copyable POD: the columnar "
              "row store and dense bindings copy it by the million");
static_assert(sizeof(Value) <= 16, "Value must stay register-friendly");

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace entangled

namespace std {
template <>
struct hash<entangled::Value> {
  size_t operator()(const entangled::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // ENTANGLED_DB_VALUE_H_
