#include "storage/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "storage/wal.h"  // Crc32c

namespace entangled {
namespace {

constexpr char kSnapshotMagic[8] = {'E', 'S', 'N', 'P', '0', '0', '0', '1'};
constexpr size_t kFrameOverhead = 4 + 4;  // payload length + payload crc

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader (same wire conventions as the
/// WAL frame payloads).
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = static_cast<uint32_t>(data_[pos_]) |
         static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
         static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
         static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t raw = 0;
    if (!ReadU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

constexpr uint8_t kValueInt = 0;
constexpr uint8_t kValueStr = 1;

void PutValue(std::vector<uint8_t>* out, const Value& value) {
  if (value.kind() == Value::Kind::kInt) {
    PutU8(out, kValueInt);
    PutI64(out, value.AsInt());
  } else {
    PutU8(out, kValueStr);
    PutString(out, value.AsString());
  }
}

bool ReadValue(Reader* in, Value* value) {
  uint8_t kind = 0;
  if (!in->ReadU8(&kind)) return false;
  if (kind == kValueInt) {
    int64_t v = 0;
    if (!in->ReadI64(&v)) return false;
    *value = Value::Int(v);
    return true;
  }
  if (kind == kValueStr) {
    std::string s;
    if (!in->ReadString(&s)) return false;
    *value = Value::Str(s);
    return true;
  }
  return false;
}

std::vector<uint8_t> EncodeSnapshot(const SnapshotState& state) {
  std::vector<uint8_t> out;
  PutU64(&out, state.epoch);
  PutI64(&out, state.next_durable_id);
  PutI64(&out, state.next_durable_var);
  PutU64(&out, state.next_sequence);
  PutU64(&out, state.evaluate_every);
  PutU64(&out, state.cadence_phase);
  PutU64(&out, state.total_events);
  PutU32(&out, static_cast<uint32_t>(state.relations.size()));
  for (const SnapshotRelation& relation : state.relations) {
    PutString(&out, relation.name);
    PutU32(&out, static_cast<uint32_t>(relation.columns.size()));
    for (const std::string& column : relation.columns) PutString(&out, column);
    PutU64(&out, relation.rows.size());
    for (const Tuple& row : relation.rows) {
      for (const Value& value : row) PutValue(&out, value);
    }
  }
  PutU32(&out, static_cast<uint32_t>(state.pending.size()));
  for (const SnapshotPendingQuery& pending : state.pending) {
    PutI64(&out, pending.id);
    PutI64(&out, pending.session);
    PutI64(&out, pending.var_start);
    PutU32(&out, pending.var_count);
    PutString(&out, pending.text);
  }
  return out;
}

bool DecodeSnapshot(const uint8_t* data, size_t size, SnapshotState* state) {
  Reader in(data, size);
  uint32_t num_relations = 0;
  if (!in.ReadU64(&state->epoch) || !in.ReadI64(&state->next_durable_id) ||
      !in.ReadI64(&state->next_durable_var) ||
      !in.ReadU64(&state->next_sequence) ||
      !in.ReadU64(&state->evaluate_every) ||
      !in.ReadU64(&state->cadence_phase) ||
      !in.ReadU64(&state->total_events) || !in.ReadU32(&num_relations)) {
    return false;
  }
  state->relations.clear();
  state->relations.reserve(num_relations);
  for (uint32_t r = 0; r < num_relations; ++r) {
    SnapshotRelation relation;
    uint32_t num_columns = 0;
    uint64_t num_rows = 0;
    if (!in.ReadString(&relation.name) || !in.ReadU32(&num_columns)) {
      return false;
    }
    relation.columns.resize(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      if (!in.ReadString(&relation.columns[c])) return false;
    }
    if (!in.ReadU64(&num_rows)) return false;
    relation.rows.reserve(num_rows);
    for (uint64_t row = 0; row < num_rows; ++row) {
      Tuple tuple;
      tuple.reserve(num_columns);
      for (uint32_t c = 0; c < num_columns; ++c) {
        Value value = Value::Int(0);
        if (!ReadValue(&in, &value)) return false;
        tuple.push_back(value);
      }
      relation.rows.push_back(std::move(tuple));
    }
    state->relations.push_back(std::move(relation));
  }
  uint32_t num_pending = 0;
  if (!in.ReadU32(&num_pending)) return false;
  state->pending.clear();
  state->pending.reserve(num_pending);
  for (uint32_t i = 0; i < num_pending; ++i) {
    SnapshotPendingQuery pending;
    if (!in.ReadI64(&pending.id) || !in.ReadI64(&pending.session) ||
        !in.ReadI64(&pending.var_start) || !in.ReadU32(&pending.var_count) ||
        !in.ReadString(&pending.text)) {
      return false;
    }
    state->pending.push_back(std::move(pending));
  }
  return in.exhausted();
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const std::string& path, const void* data,
                size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, bytes + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write snapshot", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string PaddedEpoch(uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  return std::string(digits.size() < 10 ? 10 - digits.size() : 0, '0') +
         digits;
}

/// Parses `<prefix><digits><suffix>` names; nullopt for anything else
/// (temp files, strays).
bool ParseEpochName(const std::string& name, const std::string& prefix,
                    const std::string& suffix, uint64_t* epoch) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

std::string SnapshotFileName(uint64_t epoch) {
  return "snapshot-" + PaddedEpoch(epoch) + ".snap";
}

std::string WalFileName(uint64_t epoch) {
  return "wal-" + PaddedEpoch(epoch) + ".log";
}

std::string SnapshotPath(const std::string& dir, uint64_t epoch) {
  return dir + "/" + SnapshotFileName(epoch);
}

std::string WalPath(const std::string& dir, uint64_t epoch) {
  return dir + "/" + WalFileName(epoch);
}

Result<StorageDirListing> ListStorageDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return ErrnoStatus("open storage dir", dir);
  StorageDirListing listing;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    uint64_t epoch = 0;
    if (ParseEpochName(name, "snapshot-", ".snap", &epoch)) {
      listing.snapshot_epochs.push_back(epoch);
    } else if (ParseEpochName(name, "wal-", ".log", &epoch)) {
      listing.wal_epochs.push_back(epoch);
    }
  }
  ::closedir(handle);
  std::sort(listing.snapshot_epochs.begin(), listing.snapshot_epochs.end());
  std::sort(listing.wal_epochs.begin(), listing.wal_epochs.end());
  return listing;
}

Result<std::string> WriteSnapshotToTemp(const SnapshotState& state,
                                        const std::string& dir) {
  const std::string temp_path =
      SnapshotPath(dir, state.epoch) + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open snapshot temp", temp_path);

  const std::vector<uint8_t> payload = EncodeSnapshot(state);
  std::vector<uint8_t> bytes(kSnapshotMagic,
                             kSnapshotMagic + sizeof(kSnapshotMagic));
  PutU32(&bytes, static_cast<uint32_t>(payload.size()));
  PutU32(&bytes, Crc32c(payload.data(), payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  Status written = WriteAll(fd, temp_path, bytes.data(), bytes.size());
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  // The temp file must be durable *before* the rename publishes it;
  // otherwise a crash could expose a named-but-hollow snapshot.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync snapshot temp", temp_path);
  }
  ::close(fd);
  return temp_path;
}

Status CommitSnapshot(const std::string& temp_path,
                      const std::string& final_path) {
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename snapshot", final_path);
  }
  // fsync the directory so the rename itself survives power loss.
  const size_t slash = final_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : final_path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return ErrnoStatus("open storage dir", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return ErrnoStatus("fsync storage dir", dir);
  return Status::OK();
}

Status WriteSnapshot(const SnapshotState& state, const std::string& dir) {
  auto temp = WriteSnapshotToTemp(state, dir);
  if (!temp.ok()) return temp.status();
  return CommitSnapshot(*temp, SnapshotPath(dir, state.epoch));
}

Result<SnapshotState> LoadSnapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open snapshot", path);
  std::vector<uint8_t> bytes;
  uint8_t buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read snapshot", path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  ::close(fd);

  if (bytes.size() < sizeof(kSnapshotMagic) + kFrameOverhead ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Internal("snapshot " + path + ": missing or short header");
  }
  Reader frame(bytes.data() + sizeof(kSnapshotMagic), kFrameOverhead);
  uint32_t len = 0, crc = 0;
  frame.ReadU32(&len);
  frame.ReadU32(&crc);
  const size_t payload_at = sizeof(kSnapshotMagic) + kFrameOverhead;
  if (bytes.size() - payload_at != len) {
    return Status::Internal("snapshot " + path + ": truncated payload");
  }
  const uint8_t* payload = bytes.data() + payload_at;
  if (Crc32c(payload, len) != crc) {
    return Status::Internal("snapshot " + path + ": CRC mismatch");
  }
  SnapshotState state;
  if (!DecodeSnapshot(payload, len, &state)) {
    return Status::Internal("snapshot " + path + ": malformed payload");
  }
  return state;
}

Status BuildDatabaseFromSnapshot(const SnapshotState& state, Database* db) {
  for (const SnapshotRelation& relation : state.relations) {
    auto created = db->CreateRelation(relation.name, relation.columns);
    if (!created.ok()) return created.status();
    Status inserted = (*created)->InsertAll(relation.rows);
    if (!inserted.ok()) return inserted;
  }
  return Status::OK();
}

void CaptureDatabaseFacts(const Database& db, SnapshotState* state) {
  state->relations.clear();
  state->relations.reserve(db.relation_count());
  for (const std::string& name : db.relation_names()) {
    const Relation* relation = db.Find(name);
    ENTANGLED_CHECK(relation != nullptr) << "catalog lists unknown relation";
    SnapshotRelation out;
    out.name = name;
    out.columns = relation->column_names();
    out.rows.reserve(relation->size());
    for (const RowView& row : relation->rows()) {
      out.rows.push_back(row.ToTuple());
    }
    state->relations.push_back(std::move(out));
  }
}

}  // namespace entangled
