#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace entangled {
namespace {

constexpr char kWalMagic[8] = {'E', 'W', 'A', 'L', '0', '0', '0', '1'};
constexpr size_t kHeaderSize = 8 + 8 + 4;  // magic + epoch + header crc
constexpr size_t kFrameOverhead = 4 + 4;   // payload length + payload crc

/// CRC32C lookup table (Castagnoli polynomial 0x1EDC6F41, reflected
/// form 0x82F63B78), built once on first use.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a frame payload.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return ok_ = false;
    *v = static_cast<uint32_t>(data_[pos_]) |
         static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
         static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
         static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t raw = 0;
    if (!ReadU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return ok_ = false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Decodes one frame payload; false on a malformed payload (treated by
/// the caller as corruption, exactly like a CRC failure).
bool DecodeWalRecord(const uint8_t* data, size_t size, WalRecord* record) {
  PayloadReader in(data, size);
  if (size < 1) return false;
  record->kind = static_cast<WalRecord::Kind>(data[0]);
  PayloadReader body(data + 1, size - 1);
  switch (record->kind) {
    case WalRecord::Kind::kSubmit:
      return body.ReadI64(&record->id) && body.ReadI64(&record->session) &&
             body.ReadString(&record->text) && body.exhausted();
    case WalRecord::Kind::kSubmitBatch: {
      uint32_t count = 0;
      if (!body.ReadI64(&record->session) || !body.ReadU32(&count)) {
        return false;
      }
      record->batch.clear();
      record->batch.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        int64_t id = -1;
        std::string text;
        if (!body.ReadI64(&id) || !body.ReadString(&text)) return false;
        record->batch.emplace_back(id, std::move(text));
      }
      return body.exhausted();
    }
    case WalRecord::Kind::kCancel:
      return body.ReadI64(&record->id) && body.ReadI64(&record->session) &&
             body.exhausted();
    case WalRecord::Kind::kSetEvaluateEvery:
    case WalRecord::Kind::kDeliveryMark:
      return body.ReadU64(&record->value) && body.exhausted();
    case WalRecord::Kind::kFlush:
      return body.exhausted();
  }
  return false;  // unknown kind byte
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kEveryFlush:
      return "every_flush";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "unknown";
}

bool WalRecord::operator==(const WalRecord& other) const {
  return kind == other.kind && id == other.id && session == other.session &&
         text == other.text && batch == other.batch && value == other.value;
}

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecord::Kind::kSubmit:
      PutI64(&out, record.id);
      PutI64(&out, record.session);
      PutString(&out, record.text);
      break;
    case WalRecord::Kind::kSubmitBatch:
      PutI64(&out, record.session);
      PutU32(&out, static_cast<uint32_t>(record.batch.size()));
      for (const auto& [id, text] : record.batch) {
        PutI64(&out, id);
        PutString(&out, text);
      }
      break;
    case WalRecord::Kind::kCancel:
      PutI64(&out, record.id);
      PutI64(&out, record.session);
      break;
    case WalRecord::Kind::kSetEvaluateEvery:
    case WalRecord::Kind::kDeliveryMark:
      PutU64(&out, record.value);
      break;
    case WalRecord::Kind::kFlush:
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t epoch,
                                                     FsyncPolicy policy) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open wal", path);
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, policy));
  std::vector<uint8_t> header(kWalMagic, kWalMagic + sizeof(kWalMagic));
  PutU64(&header, epoch);
  PutU32(&header, Crc32c(header.data(), header.size()));
  Status written = writer->WriteAll(header.data(), header.size());
  if (!written.ok()) return written;
  writer->stats_.bytes += header.size();
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t valid_bytes, FsyncPolicy policy) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open wal", path);
  // Drop the torn tail (if any) before resuming appends, so the frame
  // stream stays parseable.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    ::close(fd);
    return ErrnoStatus("truncate wal", path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return ErrnoStatus("seek wal", path);
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path, fd, policy));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::WriteAll(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, bytes + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write wal", path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  const std::vector<uint8_t> payload = EncodeWalRecord(record);
  std::vector<uint8_t> frame;
  frame.reserve(kFrameOverhead + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  Status written = WriteAll(frame.data(), frame.size());
  if (!written.ok()) return written;
  ++stats_.appended_records;
  stats_.bytes += frame.size();
  if (policy_ == FsyncPolicy::kEveryRecord) return Sync();
  return Status::OK();
}

Status WalWriter::MarkFlush() {
  if (policy_ == FsyncPolicy::kEveryFlush) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync wal", path_);
  ++stats_.fsyncs;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Segment scan
// ---------------------------------------------------------------------------

Result<WalReadResult> ReadWalSegment(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open wal", path);
  std::vector<uint8_t> bytes;
  uint8_t buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read wal", path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  ::close(fd);

  WalReadResult result;
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    result.corrupt = true;
    result.error = "wal segment " + path + ": missing or short header";
    return result;
  }
  const uint32_t header_crc =
      Crc32c(bytes.data(), kHeaderSize - 4);
  PayloadReader header(bytes.data() + sizeof(kWalMagic),
                       kHeaderSize - sizeof(kWalMagic));
  uint32_t stored_crc = 0;
  header.ReadU64(&result.epoch);
  header.ReadU32(&stored_crc);
  if (stored_crc != header_crc) {
    result.corrupt = true;
    result.error = "wal segment " + path + ": header CRC mismatch";
    return result;
  }

  size_t pos = kHeaderSize;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    // A frame that does not fit in the remaining bytes is a torn tail:
    // the crash interrupted the append mid-write.
    if (bytes.size() - pos < kFrameOverhead) break;
    PayloadReader frame(bytes.data() + pos, kFrameOverhead);
    uint32_t len = 0, crc = 0;
    frame.ReadU32(&len);
    frame.ReadU32(&crc);
    if (bytes.size() - pos - kFrameOverhead < len) break;
    const uint8_t* payload = bytes.data() + pos + kFrameOverhead;
    const bool crc_ok = Crc32c(payload, len) == crc;
    WalRecord record;
    if (!crc_ok || !DecodeWalRecord(payload, len, &record)) {
      const bool at_tail = pos + kFrameOverhead + len == bytes.size();
      if (at_tail) {
        // A damaged *final* frame is indistinguishable from a crash
        // that wrote the length before the payload landed: torn tail.
        break;
      }
      result.corrupt = true;
      result.error = "wal segment " + path + ": " +
                     (crc_ok ? "malformed record" : "CRC mismatch") +
                     " at offset " + std::to_string(pos) +
                     " (records beyond it are unrecoverable)";
      return result;
    }
    result.records.push_back(std::move(record));
    pos += kFrameOverhead + len;
    result.valid_bytes = pos;
  }
  if (result.valid_bytes < bytes.size()) {
    result.torn_tail = true;
    result.truncated_bytes = bytes.size() - result.valid_bytes;
  }
  return result;
}

}  // namespace entangled
