#ifndef ENTANGLED_DB_TERM_H_
#define ENTANGLED_DB_TERM_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/logging.h"
#include "db/value.h"

namespace entangled {

/// \brief Identifier of a query variable.  Variable ids are scoped to a
/// QuerySet; queries added to the same set are standardized apart so ids
/// never collide across queries.
using VarId = int32_t;

/// \brief A term of an atom: either a variable or a constant Value.
class Term {
 public:
  /// Default-constructs variable 0 (needed for container resizing).
  Term() : var_(0), is_variable_(true) {}

  static Term Var(VarId id) {
    Term t;
    t.is_variable_ = true;
    t.var_ = id;
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.is_variable_ = false;
    t.constant_ = std::move(value);
    return t;
  }
  /// Convenience constant factories.
  static Term Int(int64_t v) { return Const(Value::Int(v)); }
  static Term Str(std::string v) { return Const(Value::Str(std::move(v))); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  VarId var() const {
    ENTANGLED_CHECK(is_variable_) << "Term is not a variable";
    return var_;
  }
  const Value& constant() const {
    ENTANGLED_CHECK(!is_variable_) << "Term is not a constant";
    return constant_;
  }

  /// Variables render as "?<id>"; use QuerySet::TermToString for named
  /// variables.
  std::string ToString() const {
    return is_variable_ ? "?" + std::to_string(var_) : constant_.ToString();
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.var_ == b.var_ : a.constant_ == b.constant_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Value constant_;
  VarId var_;
  bool is_variable_;
};

inline std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace entangled

#endif  // ENTANGLED_DB_TERM_H_
