// Delivery self-containment: a captured Delivery must stay valid —
// byte-for-byte, including its strings and witness values — while the
// engine underneath it keeps mutating (cancellations, flushes, new
// submissions, and sharded shard merges/migrations/GC).  This is the
// regression guard for the lifetime hazard the session API redesign
// removed: the old callback handed out `const QuerySet&`, which dangled
// across Cancel and shard migration.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/delivery.h"
#include "system/engine.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// A fully-owned rendering of everything a Delivery exposes, built by
/// *reading every field* (so any dangling reference inside the Delivery
/// would be dereferenced here, and any content change diffs).
std::string DeepRender(const Delivery& d) {
  std::string out = "seq=" + std::to_string(d.sequence) + "\n";
  for (const DeliveredQuery& q : d.queries) {
    out += "id=" + std::to_string(q.id) + " name=" + q.name +
           " text=" + q.text + "\n";
    for (const Atom& answer : q.answers) {
      out += "  answer=" + answer.ToString() + "\n";
    }
  }
  d.witness.ForEach([&](VarId var, const Value& value) {
    // AsString() touches the interner-backed storage for symbols.
    out += "  ?" + std::to_string(var) + "=" +
           value.ToString(/*quote=*/true) + "\n";
  });
  for (const auto& [var, name] : d.witness_names) {
    out += "  name(?" + std::to_string(var) + ")=" + name + "\n";
  }
  out += d.ToString();
  return out;
}

class DeliveryLifetimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  static std::vector<std::string> Pair(const std::string& rel) {
    return {
        "a_" + rel + ": { " + rel + "(Bob, x) } " + rel +
            "(Alice, x) :- Users(x, 'user3').",
        "b_" + rel + ": { " + rel + "(Alice, y) } " + rel +
            "(Bob, y) :- Users(y, 'user3').",
    };
  }

  static std::string Stuck(const std::string& rel, const std::string& tag) {
    return "s_" + rel + ": { " + rel + "(Never" + tag + ", x) } " + rel +
           "(" + tag + ", x) :- Users(x, 'user7').";
  }

  Database db_;
};

TEST_F(DeliveryLifetimeTest, SurvivesCancelAndFlushOnSingleEngine) {
  CoordinationEngine engine(&db_);
  std::vector<Delivery> captured;
  engine.set_delivery_callback(
      [&](const Delivery& d) { captured.push_back(d); });

  for (const std::string& text : Pair("P")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  ASSERT_EQ(captured.size(), 1u);
  const std::string snapshot = DeepRender(captured[0]);

  // Mutate the engine hard: pending queries arrive, get cancelled,
  // more sets deliver, flushes repartition.
  auto stuck = engine.Submit(Stuck("S", "T0"));
  ASSERT_TRUE(stuck.ok());
  for (const std::string& text : Pair("Q")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  ASSERT_TRUE(engine.Cancel(*stuck));
  engine.Flush();
  ASSERT_EQ(captured.size(), 2u);

  EXPECT_EQ(DeepRender(captured[0]), snapshot)
      << "captured Delivery changed under engine mutation";
}

TEST_F(DeliveryLifetimeTest, SurvivesShardMigrationAndGc) {
  ShardedCoordinationEngine engine(&db_);
  std::vector<Delivery> captured;
  engine.set_delivery_callback(
      [&](const Delivery& d) { captured.push_back(d); });

  // A delivery out of shard P (which immediately GCs its shard: the
  // engine the delivery came from is destroyed right after).
  for (const std::string& text : Pair("P")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  ASSERT_EQ(captured.size(), 1u);
  const std::string snapshot = DeepRender(captured[0]);
  EXPECT_EQ(engine.sharded_stats().shards_gced, 1u);

  // Two stuck queries in separate shards, then a bridge whose footprint
  // spans both groups: the shards merge and the smaller side's pending
  // query migrates into the survivor (new ids, new variable namespace
  // for the moved query — the captured Delivery must not care).
  ASSERT_TRUE(engine.Submit(Stuck("S", "T0")).ok());
  ASSERT_TRUE(engine.Submit(Stuck("R", "T1")).ok());
  ASSERT_TRUE(engine
                  .Submit("br: { S(NeverT0, x), R(NeverT1, x) } "
                          "B(Tb, x) :- Users(x, 'user7').")
                  .ok());
  EXPECT_EQ(engine.sharded_stats().group_merges, 1u);
  EXPECT_GE(engine.sharded_stats().queries_migrated, 1u);

  // More churn: another pair delivers, a flush sweeps, a cancel drains.
  for (const std::string& text : Pair("V")) {
    ASSERT_TRUE(engine.Submit(text).ok());
  }
  engine.Flush();
  ASSERT_FALSE(engine.PendingQueries().empty());
  ASSERT_TRUE(engine.Cancel(engine.PendingQueries().front()));
  ASSERT_GE(captured.size(), 2u);

  EXPECT_EQ(DeepRender(captured[0]), snapshot)
      << "captured Delivery changed under shard migration/GC";
}

TEST_F(DeliveryLifetimeTest, SurvivesEngineDestruction) {
  Delivery captured;
  {
    CoordinationEngine engine(&db_);
    engine.set_delivery_callback(
        [&](const Delivery& d) { captured = d; });
    for (const std::string& text : Pair("P")) {
      ASSERT_TRUE(engine.Submit(text).ok());
    }
  }
  // The engine (and its QuerySet, graph, and bindings) is gone; the
  // event remains fully readable.
  EXPECT_EQ(captured.queries.size(), 2u);
  EXPECT_FALSE(DeepRender(captured).empty());
  EXPECT_EQ(captured.queries[0].name, "a_P");
}

}  // namespace
}  // namespace entangled
