#include "system/engine.h"

#include <gtest/gtest.h>

#include "core/validator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 32).ok());
  }

  Database db_;
  std::vector<Delivery> delivered_;

  void Capture(CoordinationEngine* engine) {
    engine->set_delivery_callback(
        [this](const Delivery& delivery) { delivered_.push_back(delivery); });
  }
};

TEST_F(EngineTest, PairCoordinatesOnSecondArrival) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  auto a = engine.Submit(
      "a: { R(B, x) } R(A, x) :- Users(x, 'user1').");
  ASSERT_TRUE(a.ok()) << a.status();
  // a alone cannot coordinate: still pending.
  EXPECT_TRUE(engine.IsPending(*a));
  EXPECT_TRUE(delivered_.empty());

  auto b = engine.Submit(
      "b: { R(A, y) } R(B, y) :- Users(y, 'user1').");
  ASSERT_TRUE(b.ok()) << b.status();
  // The pair coordinates and retires.
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].QueryIds(), (std::vector<QueryId>{*a, *b}));
  EXPECT_FALSE(engine.IsPending(*a));
  EXPECT_FALSE(engine.IsPending(*b));
  EXPECT_TRUE(ValidateSolution(db_, engine.queries(),
                               SolutionFromDelivery(delivered_[0]))
                  .ok());
}

TEST_F(EngineTest, SelfContainedQueryRetiresImmediately) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  auto solo = engine.Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(solo.ok());
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].QueryIds(), (std::vector<QueryId>{*solo}));
  EXPECT_TRUE(engine.PendingQueries().empty());
}

TEST_F(EngineTest, BatchedEvaluationWithFlush) {
  EngineOptions options;
  options.evaluate_every = 0;  // manual
  CoordinationEngine engine(&db_, options);
  Capture(&engine);
  ASSERT_TRUE(
      engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').").ok());
  ASSERT_TRUE(
      engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').").ok());
  ASSERT_TRUE(
      engine.Submit("solo: { } K(w) :- Users(w, 'user5').").ok());
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(engine.PendingQueries().size(), 3u);
  size_t found = engine.Flush();
  EXPECT_EQ(found, 2u);  // the pair and the singleton
  EXPECT_EQ(delivered_.size(), 2u);
  EXPECT_TRUE(engine.PendingQueries().empty());
}

TEST_F(EngineTest, UnsatisfiableQueryStaysPending) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  auto waiting = engine.Submit(
      "waiting: { R(B, x) } R(A, x) :- Users(x, 'user1').");
  ASSERT_TRUE(waiting.ok());
  EXPECT_TRUE(engine.IsPending(*waiting));
  EXPECT_EQ(engine.stats().coordinating_sets, 0u);
  // It keeps waiting across unrelated arrivals.
  ASSERT_TRUE(engine.Submit("solo: { } K(w) :- Users(w, 'user5').").ok());
  EXPECT_TRUE(engine.IsPending(*waiting));
}

TEST_F(EngineTest, LargestReachableSetRetiresTogether) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  Capture(&engine);
  // gwyneth -> chris <-> guy: one weak component, coordinating set of 3.
  ASSERT_TRUE(engine
                  .Submit("chris: { R(Guy, x) } R(Chris, x) :- "
                          "Users(x, 'user1').")
                  .ok());
  ASSERT_TRUE(engine
                  .Submit("guy: { R(Chris, y) } R(Guy, y) :- "
                          "Users(y, 'user1').")
                  .ok());
  ASSERT_TRUE(engine
                  .Submit("gwyneth: { R(Chris, z) } R(Gwyneth, z) :- "
                          "Users(z, 'user1').")
                  .ok());
  EXPECT_EQ(engine.Flush(), 1u);
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].queries.size(), 3u);
}

TEST_F(EngineTest, ParseErrorsSurface) {
  CoordinationEngine engine(&db_);
  auto bad = engine.Submit("not a query at all");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST_F(EngineTest, ProgrammaticSubmission) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  QuerySet* master = engine.mutable_queries();
  EntangledQuery q;
  q.name = "built";
  VarId w = master->NewVar("w");
  q.head.emplace_back("K", std::vector<Term>{Term::Var(w)});
  q.body.emplace_back(
      "Users", std::vector<Term>{Term::Var(w), Term::Str("user3")});
  QueryId id = engine.SubmitQuery(std::move(q));
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_FALSE(engine.IsPending(id));
}

TEST_F(EngineTest, StatsTrackLifecycle) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  ASSERT_TRUE(
      engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').").ok());
  ASSERT_TRUE(
      engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').").ok());
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.coordinating_sets, 1u);
  EXPECT_EQ(stats.coordinated_queries, 2u);
  EXPECT_GE(stats.evaluations, 1u);
  EXPECT_GT(stats.db_queries, 0u);
}

TEST_F(EngineTest, RetiredQueriesDoNotRecoordinate) {
  CoordinationEngine engine(&db_);
  Capture(&engine);
  ASSERT_TRUE(
      engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').").ok());
  ASSERT_TRUE(
      engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').").ok());
  ASSERT_EQ(delivered_.size(), 1u);
  // A second pair with the same answer relations coordinates among
  // themselves only (the first pair is retired).
  auto a2 = engine.Submit("a2: { R(B, x) } R(A, x) :- Users(x, 'user2').");
  ASSERT_TRUE(a2.ok());
  auto b2 = engine.Submit("b2: { R(A, y) } R(B, y) :- Users(y, 'user2').");
  ASSERT_TRUE(b2.ok());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[1].QueryIds(), (std::vector<QueryId>{*a2, *b2}));
}

}  // namespace
}  // namespace entangled
