#ifndef ENTANGLED_SYSTEM_RELATION_ROUTER_H_
#define ENTANGLED_SYSTEM_RELATION_ROUTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace entangled {

/// \brief Identifier of an answer relation inside a RelationRouter.
using RelationId = int32_t;

/// \brief The routing layer of the sharded coordination service: a
/// union-find over answer-relation names.
///
/// The coordination graph admits an edge between two queries only when
/// a postcondition of one unifies with a head of the other — which
/// requires the two atoms to name the *same* answer relation.  A
/// query's **relation footprint** (the set of relation names over its
/// postconditions and heads) therefore bounds everything it can ever
/// coordinate with: queries whose footprints live in disjoint relation
/// groups can never share a coordination edge, directly or
/// transitively.  The router maintains exactly that grouping: every
/// admitted footprint unions its relations into one group, so "which
/// shard owns this query" is a handful of find operations —
/// O(footprint · α(relations)) — and the small routing table is all the
/// coordination information the front door needs (the Coordination
/// Complexity theme: little information, large population).
///
/// Groups only ever grow while any of their queries are pending; when a
/// shard drains, the owner calls DissolveGroup and the relations revert
/// to singletons, ready to re-bridge along whatever footprints future
/// traffic actually exhibits.
class RelationRouter {
 public:
  RelationRouter() = default;

  /// Interns a relation name (idempotent).
  RelationId Intern(const std::string& name);

  /// The relation footprint of `set`'s query `id`: the distinct
  /// relation ids over its postconditions and heads, ascending.  Body
  /// atoms are deliberately excluded — database relations never induce
  /// coordination edges.
  std::vector<RelationId> Footprint(const QuerySet& set, QueryId id);

  /// Unions every relation of `footprint` into one group.  Returns the
  /// surviving group root; `prior_roots` (optional) receives the
  /// distinct roots the footprint touched *before* uniting, ascending —
  /// more than one entry means previously independent groups (and their
  /// shards) must merge.
  RelationId Unite(const std::vector<RelationId>& footprint,
                   std::vector<RelationId>* prior_roots = nullptr);

  /// Caller-assigned weight of the group rooted at `root` (the sharded
  /// front door stores the bound shard's pending count).  Union prefers
  /// the heavier root — so the surviving group root tracks the heavy
  /// shard and the survivor's group binding is an O(1) rebind, matching
  /// the engine side's small-into-large merge — and sums weights on
  /// merge; relation count breaks ties.  Weights reset to 0 on
  /// DissolveGroup.
  void SetWeight(RelationId root, uint64_t weight);
  uint64_t weight(RelationId root) const {
    return weight_[static_cast<size_t>(root)];
  }

  /// Group root of `r`, with path compression.
  RelationId Find(RelationId r) const;

  /// The relations of the group rooted at `root` (unordered).  Only
  /// meaningful at a root.
  const std::vector<RelationId>& GroupRelations(RelationId root) const;

  /// Dissolves a drained group: every member relation becomes a
  /// singleton group again.  The caller must guarantee no pending query
  /// has a footprint inside the group (the sharding invariant makes
  /// this safe exactly when the group's shard is empty).
  void DissolveGroup(RelationId root);

  size_t num_relations() const { return parent_.size(); }
  const std::string& relation_name(RelationId r) const;

  /// Number of distinct live groups (roots).
  size_t num_groups() const;

 private:
  void Union(RelationId a, RelationId b);

  std::unordered_map<std::string, RelationId> ids_;
  std::vector<std::string> names_;
  mutable std::vector<RelationId> parent_;
  std::vector<uint32_t> size_;
  std::vector<uint64_t> weight_;                  // at roots
  std::vector<std::vector<RelationId>> members_;  // at roots
};

}  // namespace entangled

#endif  // ENTANGLED_SYSTEM_RELATION_ROUTER_H_
