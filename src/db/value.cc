#include "db/value.h"

#include "common/hash.h"
#include "common/logging.h"

namespace entangled {

int64_t Value::AsInt() const {
  ENTANGLED_CHECK(is_int()) << "Value is not an int: " << ToString(true);
  return std::get<int64_t>(repr_);
}

const std::string& Value::AsString() const {
  ENTANGLED_CHECK(is_string()) << "Value is not a string: " << ToString(true);
  return std::get<std::string>(repr_);
}

std::string Value::ToString(bool quote) const {
  if (is_int()) return std::to_string(std::get<int64_t>(repr_));
  const std::string& s = std::get<std::string>(repr_);
  if (!quote) return s;
  return "'" + s + "'";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  if (is_int()) {
    HashCombine(&seed, std::get<int64_t>(repr_));
  } else {
    HashCombine(&seed, std::get<std::string>(repr_));
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace entangled
