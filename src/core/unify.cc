#include "core/unify.h"

#include "common/logging.h"

namespace entangled {

Substitution::Substitution(size_t num_vars)
    : parent_(num_vars), rank_(num_vars, 0), constant_(num_vars) {
  for (size_t v = 0; v < num_vars; ++v) {
    parent_[v] = static_cast<VarId>(v);
  }
}

VarId Substitution::Find(VarId v) {
  ENTANGLED_CHECK(v >= 0 && static_cast<size_t>(v) < parent_.size())
      << "unknown variable " << v;
  VarId root = v;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(v)] != root) {
    VarId next = parent_[static_cast<size_t>(v)];
    parent_[static_cast<size_t>(v)] = root;
    v = next;
  }
  return root;
}

const Value* Substitution::ConstantOf(VarId v) {
  const auto& slot = constant_[static_cast<size_t>(Find(v))];
  return slot.has_value() ? &*slot : nullptr;
}

bool Substitution::UnifyVars(VarId a, VarId b) {
  VarId ra = Find(a);
  VarId rb = Find(b);
  if (ra == rb) return true;
  const auto& ca = constant_[static_cast<size_t>(ra)];
  const auto& cb = constant_[static_cast<size_t>(rb)];
  if (ca.has_value() && cb.has_value() && *ca != *cb) return false;
  // Union by rank; the surviving root inherits the constant.
  if (rank_[static_cast<size_t>(ra)] < rank_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  if (rank_[static_cast<size_t>(ra)] == rank_[static_cast<size_t>(rb)]) {
    ++rank_[static_cast<size_t>(ra)];
  }
  if (!constant_[static_cast<size_t>(ra)].has_value() &&
      constant_[static_cast<size_t>(rb)].has_value()) {
    constant_[static_cast<size_t>(ra)] = constant_[static_cast<size_t>(rb)];
  }
  constant_[static_cast<size_t>(rb)].reset();
  return true;
}

bool Substitution::BindConstant(VarId v, const Value& value) {
  VarId root = Find(v);
  auto& slot = constant_[static_cast<size_t>(root)];
  if (slot.has_value()) return *slot == value;
  slot = value;
  return true;
}

bool Substitution::UnifyTerms(const Term& a, const Term& b) {
  if (a.is_constant() && b.is_constant()) {
    return a.constant() == b.constant();
  }
  if (a.is_variable() && b.is_variable()) {
    return UnifyVars(a.var(), b.var());
  }
  if (a.is_variable()) return BindConstant(a.var(), b.constant());
  return BindConstant(b.var(), a.constant());
}

bool Substitution::UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.relation != b.relation || a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!UnifyTerms(a.terms[i], b.terms[i])) return false;
  }
  return true;
}

bool Substitution::UnifyAtomLists(const std::vector<Atom>& as,
                                  const std::vector<Atom>& bs) {
  if (as.size() != bs.size()) return false;
  for (size_t i = 0; i < as.size(); ++i) {
    if (!UnifyAtoms(as[i], bs[i])) return false;
  }
  return true;
}

Term Substitution::Resolve(const Term& term) {
  if (term.is_constant()) return term;
  VarId root = Find(term.var());
  const auto& slot = constant_[static_cast<size_t>(root)];
  if (slot.has_value()) return Term::Const(*slot);
  return Term::Var(root);
}

Atom Substitution::Apply(const Atom& atom) {
  Atom result;
  result.relation = atom.relation;
  result.terms.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    result.terms.push_back(Resolve(term));
  }
  return result;
}

std::vector<Atom> Substitution::ApplyAll(const std::vector<Atom>& atoms) {
  std::vector<Atom> result;
  result.reserve(atoms.size());
  for (const Atom& atom : atoms) result.push_back(Apply(atom));
  return result;
}

std::optional<Substitution> MostGeneralUnifier(const Atom& a, const Atom& b,
                                               size_t num_vars) {
  Substitution subst(num_vars);
  if (!subst.UnifyAtoms(a, b)) return std::nullopt;
  return subst;
}

}  // namespace entangled
