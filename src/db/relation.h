#ifndef ENTANGLED_DB_RELATION_H_
#define ENTANGLED_DB_RELATION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "db/value.h"

namespace entangled {

/// \brief Row identifier within a relation (index into the row store).
using RowId = uint32_t;

/// \brief A materialized database tuple (used for insertion and for
/// callers that need an owning copy; stored rows live in the
/// relation's flat arena and are read through RowView).
using Tuple = std::vector<Value>;

/// \brief A borrowed, non-owning view of one stored row: a pointer
/// into the relation's arity-strided value arena.
///
/// Values are 16-byte PODs, so a row is `arity` contiguous trivially
/// copyable cells — scans walk the arena without pointer chasing.
/// Views are invalidated by Insert (the arena may reallocate), the
/// same lifetime contract the old row-of-vectors store had.
class RowView {
 public:
  RowView() = default;
  RowView(const Value* data, size_t arity) : data_(data), arity_(arity) {}
  /// A Tuple views as a row (handy for shared rendering helpers).
  RowView(const Tuple& tuple)  // NOLINT: implicit by design
      : data_(tuple.data()), arity_(tuple.size()) {}

  const Value& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return arity_; }
  bool empty() const { return arity_ == 0; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  /// An owning copy.
  Tuple ToTuple() const { return Tuple(data_, data_ + arity_); }

 private:
  const Value* data_ = nullptr;
  size_t arity_ = 0;
};

/// \brief Iterable over a relation's rows, yielding RowView per row.
class RowRange {
 public:
  class iterator {
   public:
    iterator(const Value* ptr, size_t arity) : ptr_(ptr), arity_(arity) {}
    RowView operator*() const { return RowView(ptr_, arity_); }
    iterator& operator++() {
      ptr_ += arity_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.ptr_ == b.ptr_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    const Value* ptr_;
    size_t arity_;
  };

  RowRange(const Value* data, size_t arity, size_t num_rows)
      : data_(data), arity_(arity), num_rows_(num_rows) {}

  iterator begin() const { return iterator(data_, arity_); }
  iterator end() const { return iterator(data_ + num_rows_ * arity_, arity_); }
  size_t size() const { return num_rows_; }

 private:
  const Value* data_;
  size_t arity_;
  size_t num_rows_;
};

/// "(v1, v2, ...)".
std::string TupleToString(RowView tuple);

/// \brief An in-memory relation: a named, fixed-arity bag of tuples
/// stored columnar-friendly — one flat arity-strided Value arena — with
/// lazily-built hash indexes.
///
/// Indexes are caches: they are built on first probe of a column (or
/// column group) and kept consistent by Insert.  Building them is
/// logically const, matching how the evaluator — which only reads the
/// database — accelerates its scans.  Cache access is guarded by a
/// reader-writer lock so concurrent read-only evaluation (the engine's
/// parallel Flush(), ConsistentCoordinator's worker threads) is safe:
/// steady-state probes of an already-built index take only the shared
/// lock; the exclusive lock is held just while an index is built.
/// Returned references stay valid after the lock drops because the
/// cache maps are node-based and an inner index is never mutated once
/// built (Insert, the only writer, must not run concurrently with
/// readers).
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> column_names);

  // Copy/move transplant the data and caches under the source's index
  // lock; the destination starts with a fresh (unlocked) mutex.
  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation&) = delete;
  Relation& operator=(Relation&&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t arity() const { return column_names_.size(); }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Monotone mutation counter: bumped by every successful Insert.
  /// Two reads returning the same value bracket a window in which the
  /// relation's contents were unchanged, so cached evaluation results
  /// stamped with it can be reused (same read/write contract as size():
  /// Insert must not run concurrently with readers).
  uint64_t version() const { return version_; }

  /// Points this relation at its owning database's mutation counter so
  /// Insert can bump the catalog-wide version too (wired by
  /// Database::CreateRelation; nullptr for free-standing relations).
  void BindDatabaseVersion(std::atomic<uint64_t>* counter) {
    db_version_ = counter;
  }

  /// Index of the column called `name`, if any.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a tuple; fails on arity mismatch.
  Status Insert(Tuple tuple);

  /// Appends Insert(...) for each tuple; stops at the first failure.
  Status InsertAll(std::vector<Tuple> tuples);

  /// A view of one stored row (invalidated by Insert).
  RowView row(RowId id) const;
  /// Iterates stored rows in insertion order, yielding RowViews.
  RowRange rows() const { return RowRange(cells_.data(), arity(), num_rows_); }

  /// Row ids whose `column` equals `value` (hash-index probe; builds the
  /// index on first use).  The returned reference is stable until the
  /// next Insert.
  const std::vector<RowId>& Probe(size_t column, const Value& value) const;

  /// Row ids matching `pattern`, where disengaged positions are
  /// wildcards.  Uses the most selective single-column index among the
  /// engaged positions, then filters.
  std::vector<RowId> SelectWhere(
      const std::vector<std::optional<Value>>& pattern) const;

  /// Whether at least one row matches `pattern`.
  bool AnyMatch(const std::vector<std::optional<Value>>& pattern) const;

  /// Distinct values appearing in `column`, in first-seen row order.
  std::vector<Value> DistinctValues(size_t column) const;

  /// Groups rows by their projection onto `columns`; the map is cached.
  /// Iteration over the returned map is unordered; use GroupKeys for a
  /// deterministic ordering.
  const std::unordered_map<std::vector<Value>, std::vector<RowId>,
                           VectorHash>&
  GroupBy(const std::vector<size_t>& columns) const;

  /// Distinct projections onto `columns`, in first-seen row order
  /// (deterministic companion of GroupBy).
  std::vector<std::vector<Value>> GroupKeys(
      const std::vector<size_t>& columns) const;

 private:
  using ColumnIndexMap = std::unordered_map<Value, std::vector<RowId>>;
  using GroupIndexMap =
      std::unordered_map<std::vector<Value>, std::vector<RowId>, VectorHash>;

  const ColumnIndexMap& EnsureColumnIndex(size_t column) const;

  const Value* cell_ptr(RowId id) const {
    return cells_.data() + static_cast<size_t>(id) * arity();
  }

  std::string name_;
  std::vector<std::string> column_names_;
  // Arity-strided flat row store: row r occupies
  // cells_[r*arity() .. (r+1)*arity()).
  std::vector<Value> cells_;
  size_t num_rows_ = 0;
  uint64_t version_ = 0;
  std::atomic<uint64_t>* db_version_ = nullptr;

  // Lazily-built caches (see class comment).
  mutable std::shared_mutex index_mutex_;
  mutable std::unordered_map<size_t, ColumnIndexMap> column_indexes_;
  mutable std::unordered_map<std::vector<size_t>, GroupIndexMap, VectorHash>
      group_indexes_;
};

}  // namespace entangled

#endif  // ENTANGLED_DB_RELATION_H_
