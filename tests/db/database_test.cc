#include "db/database.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(DatabaseTest, CreateAndFind) {
  Database db;
  auto flights = db.CreateRelation("F", {"id", "dest"});
  ASSERT_TRUE(flights.ok());
  EXPECT_EQ(db.Find("F"), *flights);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_TRUE(db.Contains("F"));
  EXPECT_EQ(db.relation_count(), 1u);
}

TEST(DatabaseTest, DuplicateNameRejected) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("F", {"id"}).ok());
  auto dup = db.CreateRelation("F", {"other"});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST(DatabaseTest, EmptyColumnsRejected) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("F", {}).status().IsInvalidArgument());
}

TEST(DatabaseTest, GetReturnsNotFound) {
  Database db;
  EXPECT_TRUE(db.Get("nope").status().IsNotFound());
}

TEST(DatabaseTest, RelationNamesInCreationOrder) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("B", {"x"}).ok());
  ASSERT_TRUE(db.CreateRelation("A", {"x"}).ok());
  EXPECT_EQ(db.relation_names(), (std::vector<std::string>{"B", "A"}));
}

TEST(DatabaseTest, TotalRowsSumsRelations) {
  Database db;
  Relation* a = *db.CreateRelation("A", {"x"});
  Relation* b = *db.CreateRelation("B", {"x"});
  ASSERT_TRUE(a->Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(a->Insert({Value::Int(2)}).ok());
  ASSERT_TRUE(b->Insert({Value::Int(3)}).ok());
  EXPECT_EQ(db.TotalRows(), 3u);
}

TEST(DatabaseTest, StatsAccumulateAndReset) {
  Database db;
  db.stats().conjunctive_queries = 5;
  db.stats().enumerate_queries = 2;
  EXPECT_EQ(db.stats().total_queries(), 7u);
  db.stats().Reset();
  EXPECT_EQ(db.stats().total_queries(), 0u);
}

TEST(DatabaseTest, FindMutableAllowsInserts) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("A", {"x"}).ok());
  Relation* a = db.FindMutable("A");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->Insert({Value::Int(9)}).ok());
  EXPECT_EQ(db.Find("A")->size(), 1u);
}

}  // namespace
}  // namespace entangled
