// Figure 5 — "Processing Time in Scale Free Network Structure" (§6.1).
//
// Workload: coordination partners drawn from a directed Barabási–Albert
// scale-free network (the paper's social-network model [1]); sizes
// n = 10..100, averaged over ten random graphs per size, over the
// 82,168-row social table.  The paper finds the running time linear in
// n and lower than the list structure's (fewer database round-trips,
// since reachable sets overlap).

#include <benchmark/benchmark.h>

#include "algo/scc_coordination.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr int kEdgesPerNode = 2;
constexpr int kGraphsPerSize = 10;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(
        InstallSocialTable(database, "Users", kSlashdotTableSize).ok());
    return database;
  }();
  return *db;
}

SolverStats RunOnce(int n, uint64_t seed) {
  Rng rng(seed);
  QuerySet set;
  MakeScaleFreeWorkload(n, kEdgesPerNode, "Users", &rng, &set);
  SccCoordinator coordinator(&SocialDb());
  auto result = coordinator.Solve(set);
  ENTANGLED_CHECK(result.ok()) << result.status();
  return coordinator.stats();
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Figure 5: SCC algorithm processing time, scale-free structure "
      "(mean of 10 random graphs)",
      {"num_queries", "time_ms", "db_queries_mean"});
  RunOnce(10, 1);  // warm-up: build the social table's hash index once
  for (int n = 10; n <= 100; n += 10) {
    double total_ms = 0;
    double total_db = 0;
    for (uint64_t seed = 1; seed <= kGraphsPerSize; ++seed) {
      WallTimer timer;
      SolverStats stats = RunOnce(n, seed);
      total_ms += timer.ElapsedMillis();
      total_db += static_cast<double>(stats.db_queries);
    }
    benchutil::PrintRow({static_cast<double>(n), total_ms / kGraphsPerSize,
                         total_db / kGraphsPerSize});
  }
  benchutil::PrintNote(
      "expected shape: linear in n, faster than Figure 4's list");
}

void BM_SccScaleFree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    RunOnce(n, seed);
    seed = seed % kGraphsPerSize + 1;
  }
}
BENCHMARK(BM_SccScaleFree)->Arg(10)->Arg(55)->Arg(100);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
