#include "db/relation.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

Relation MakeFlights() {
  Relation flights("F", {"flightId", "destination"});
  EXPECT_TRUE(flights.Insert({Value::Int(101), Value::Str("Zurich")}).ok());
  EXPECT_TRUE(flights.Insert({Value::Int(102), Value::Str("Paris")}).ok());
  EXPECT_TRUE(flights.Insert({Value::Int(103), Value::Str("Zurich")}).ok());
  return flights;
}

TEST(RelationTest, BasicProperties) {
  Relation flights = MakeFlights();
  EXPECT_EQ(flights.name(), "F");
  EXPECT_EQ(flights.arity(), 2u);
  EXPECT_EQ(flights.size(), 3u);
  EXPECT_FALSE(flights.empty());
}

TEST(RelationTest, ColumnIndexLookup) {
  Relation flights = MakeFlights();
  EXPECT_EQ(flights.ColumnIndex("flightId"), 0u);
  EXPECT_EQ(flights.ColumnIndex("destination"), 1u);
  EXPECT_FALSE(flights.ColumnIndex("airline").has_value());
}

TEST(RelationTest, InsertRejectsArityMismatch) {
  Relation flights("F", {"a", "b"});
  Status status = flights.Insert({Value::Int(1)});
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(flights.size(), 0u);
}

TEST(RelationTest, RowAccess) {
  Relation flights = MakeFlights();
  EXPECT_EQ(flights.row(0)[0], Value::Int(101));
  EXPECT_EQ(flights.row(2)[1], Value::Str("Zurich"));
}

TEST(RelationTest, ProbeFindsMatchingRows) {
  Relation flights = MakeFlights();
  const auto& zurich = flights.Probe(1, Value::Str("Zurich"));
  EXPECT_EQ(zurich, (std::vector<RowId>{0, 2}));
  EXPECT_TRUE(flights.Probe(1, Value::Str("Oslo")).empty());
}

TEST(RelationTest, ProbeIndexStaysConsistentAcrossInserts) {
  Relation flights = MakeFlights();
  // Build the index first ...
  EXPECT_EQ(flights.Probe(1, Value::Str("Paris")).size(), 1u);
  // ... then insert and re-probe: the index must see the new row.
  EXPECT_TRUE(flights.Insert({Value::Int(104), Value::Str("Paris")}).ok());
  EXPECT_EQ(flights.Probe(1, Value::Str("Paris")),
            (std::vector<RowId>{1, 3}));
}

TEST(RelationTest, SelectWhereSingleColumn) {
  Relation flights = MakeFlights();
  std::vector<std::optional<Value>> pattern = {std::nullopt,
                                               Value::Str("Zurich")};
  EXPECT_EQ(flights.SelectWhere(pattern), (std::vector<RowId>{0, 2}));
}

TEST(RelationTest, SelectWhereConjunction) {
  Relation flights = MakeFlights();
  std::vector<std::optional<Value>> pattern = {Value::Int(103),
                                               Value::Str("Zurich")};
  EXPECT_EQ(flights.SelectWhere(pattern), (std::vector<RowId>{2}));
  pattern[1] = Value::Str("Paris");
  EXPECT_TRUE(flights.SelectWhere(pattern).empty());
}

TEST(RelationTest, SelectWhereNoConstraintsReturnsAll) {
  Relation flights = MakeFlights();
  std::vector<std::optional<Value>> pattern = {std::nullopt, std::nullopt};
  EXPECT_EQ(flights.SelectWhere(pattern).size(), 3u);
}

TEST(RelationTest, AnyMatch) {
  Relation flights = MakeFlights();
  EXPECT_TRUE(flights.AnyMatch({std::nullopt, Value::Str("Paris")}));
  EXPECT_FALSE(flights.AnyMatch({Value::Int(101), Value::Str("Paris")}));
  EXPECT_TRUE(flights.AnyMatch({std::nullopt, std::nullopt}));
}

TEST(RelationTest, AnyMatchOnEmptyRelation) {
  Relation empty("E", {"a"});
  EXPECT_FALSE(empty.AnyMatch({std::nullopt}));
  EXPECT_FALSE(empty.AnyMatch({Value::Int(1)}));
}

TEST(RelationTest, DistinctValuesFirstSeenOrder) {
  Relation flights = MakeFlights();
  std::vector<Value> destinations = flights.DistinctValues(1);
  EXPECT_EQ(destinations,
            (std::vector<Value>{Value::Str("Zurich"), Value::Str("Paris")}));
}

TEST(RelationTest, GroupByPartitionsRows) {
  Relation flights = MakeFlights();
  const auto& groups = flights.GroupBy({1});
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at({Value::Str("Zurich")}),
            (std::vector<RowId>{0, 2}));
  EXPECT_EQ(groups.at({Value::Str("Paris")}), (std::vector<RowId>{1}));
}

TEST(RelationTest, GroupByStaysConsistentAcrossInserts) {
  Relation flights = MakeFlights();
  flights.GroupBy({1});  // build the cache
  EXPECT_TRUE(flights.Insert({Value::Int(105), Value::Str("Oslo")}).ok());
  const auto& groups = flights.GroupBy({1});
  EXPECT_EQ(groups.at({Value::Str("Oslo")}), (std::vector<RowId>{3}));
}

TEST(RelationTest, GroupKeysDeterministicOrder) {
  Relation flights = MakeFlights();
  auto keys = flights.GroupKeys({1});
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (std::vector<Value>{Value::Str("Zurich")}));
  EXPECT_EQ(keys[1], (std::vector<Value>{Value::Str("Paris")}));
}

TEST(RelationTest, GroupByMultipleColumns) {
  Relation r("R", {"a", "b", "c"});
  ASSERT_TRUE(
      r.Insert({Value::Int(1), Value::Str("x"), Value::Int(10)}).ok());
  ASSERT_TRUE(
      r.Insert({Value::Int(2), Value::Str("x"), Value::Int(10)}).ok());
  ASSERT_TRUE(
      r.Insert({Value::Int(3), Value::Str("y"), Value::Int(10)}).ok());
  const auto& groups = r.GroupBy({1, 2});
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at({Value::Str("x"), Value::Int(10)}).size(), 2u);
}

TEST(RelationTest, TupleToString) {
  EXPECT_EQ(TupleToString(Tuple{Value::Int(1), Value::Str("a")}), "(1, 'a')");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(RelationDeathTest, NoColumnsAborts) {
  EXPECT_DEATH(Relation("bad", {}), "at least one column");
}

}  // namespace
}  // namespace entangled
