#include "workload/social_data.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(SocialDataTest, InstallsRequestedRows) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 100).ok());
  const Relation* users = db.Find("Users");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->size(), 100u);
  EXPECT_EQ(users->arity(), 2u);
  EXPECT_EQ(users->row(7)[0], Value::Int(7));
  EXPECT_EQ(users->row(7)[1], Value::Str("user7"));
}

TEST(SocialDataTest, HandlesAreUnique) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 500).ok());
  EXPECT_EQ(db.Find("Users")->DistinctValues(1).size(), 500u);
}

TEST(SocialDataTest, HandleHelperMatchesTable) {
  EXPECT_EQ(SocialHandle(0), "user0");
  EXPECT_EQ(SocialHandle(82167), "user82167");
}

TEST(SocialDataTest, DuplicateInstallRejected) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 10).ok());
  EXPECT_TRUE(InstallSocialTable(&db, "Users", 10).IsAlreadyExists());
}

TEST(SocialDataTest, PaperScaleConstant) {
  EXPECT_EQ(kSlashdotTableSize, 82168u);
}

}  // namespace
}  // namespace entangled
