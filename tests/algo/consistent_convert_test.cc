#include <gtest/gtest.h>

#include "algo/consistent.h"
#include "core/properties.h"
#include "core/validator.h"
#include "workload/consistent_workloads.h"
#include "workload/scenarios.h"

namespace entangled {
namespace {

class ConvertTest : public ::testing::Test {
 protected:
  void SetUp() override { scenario_ = BuildMovieScenario(&db_); }

  Database db_;
  MovieScenario scenario_;
};

TEST_F(ConvertTest, GeneralFormShape) {
  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(scenario_.schema, scenario_.queries, &set);
  ASSERT_EQ(set.size(), 4u);
  ASSERT_EQ(conversion.query_ids.size(), 4u);

  // Chris: {R(y, Will)} R(x, Chris) :- M(x, Regal, Contagion),
  //                                    M(y, Regal, z).
  const EntangledQuery& chris = set.query(conversion.query_ids[0]);
  ASSERT_EQ(chris.postconditions.size(), 1u);
  EXPECT_EQ(chris.postconditions[0].relation, "R");
  EXPECT_EQ(chris.postconditions[0].terms[1], Term::Str("Will"));
  ASSERT_EQ(chris.head.size(), 1u);
  EXPECT_EQ(chris.head[0].terms[1], Term::Str("Chris"));
  ASSERT_EQ(chris.body.size(), 2u);  // own tuple + partner tuple
  EXPECT_EQ(chris.body[0].relation, "M");
  EXPECT_EQ(chris.body[0].terms[1], Term::Str("Regal"));
  EXPECT_EQ(chris.body[0].terms[2], Term::Str("Contagion"));
  // Partner coordinates on the cinema (same constant), not the movie.
  EXPECT_EQ(chris.body[1].terms[1], Term::Str("Regal"));
  EXPECT_TRUE(chris.body[1].terms[2].is_variable());

  // Guy has a friend variable: body gains C(Guy, f).
  const EntangledQuery& guy = set.query(conversion.query_ids[1]);
  ASSERT_EQ(guy.body.size(), 3u);
  EXPECT_EQ(guy.body[1].relation, "C");
  EXPECT_EQ(guy.body[1].terms[0], Term::Str("Guy"));
  EXPECT_TRUE(guy.body[1].terms[1].is_variable());
  // Guy's postcondition mentions the same friend variable.
  EXPECT_EQ(guy.postconditions[0].terms[1], guy.body[1].terms[1]);
}

TEST_F(ConvertTest, SharedCoordinationVariable) {
  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(scenario_.schema, scenario_.queries, &set);
  // Jonny leaves the cinema open: his own atom and his partner's atom
  // must share one variable in the cinema column (A-coordinating).
  const EntangledQuery& jonny = set.query(conversion.query_ids[2]);
  const Atom& self = jonny.body[0];   // M(x, b, Hugo)
  const Atom& partner = jonny.body[2];  // M(y, b, z)
  ASSERT_TRUE(self.terms[1].is_variable());
  EXPECT_EQ(self.terms[1], partner.terms[1]);
  // Movie column: constant for Jonny, fresh variable for the partner.
  EXPECT_EQ(self.terms[2], Term::Str("Hugo"));
  ASSERT_TRUE(partner.terms[2].is_variable());
  EXPECT_NE(partner.terms[2], self.terms[1]);
}

TEST_F(ConvertTest, ConvertedSetIsUnsafe) {
  // Friend variables make postconditions unify with several heads —
  // exactly why §5 needs its own algorithm.
  QuerySet set;
  ToEntangledQueries(scenario_.schema, scenario_.queries, &set);
  EXPECT_FALSE(IsSafeSet(set));
}

TEST_F(ConvertTest, SolutionTranslatesAndValidates) {
  // The bridge theorem of this repository: the consistent algorithm's
  // output, translated to the general form, passes the independent
  // Definition-1 validator.
  ConsistentCoordinator coordinator(&db_, scenario_.schema);
  auto solution = coordinator.Solve(scenario_.queries);
  ASSERT_TRUE(solution.ok()) << solution.status();

  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(scenario_.schema, scenario_.queries, &set);
  CoordinationSolution translated = ToCoordinationSolution(
      db_, scenario_.schema, scenario_.queries, conversion, *solution);
  EXPECT_EQ(translated.queries.size(), solution->size());
  EXPECT_TRUE(ValidateSolution(db_, set, translated).ok());
}

TEST_F(ConvertTest, WellFormedAgainstTheSchema) {
  QuerySet set;
  ToEntangledQueries(scenario_.schema, scenario_.queries, &set);
  EXPECT_TRUE(set.CheckWellFormed(db_).ok());
}

TEST(ConvertGridTest, WorstCaseWorkloadTranslatesAndValidates) {
  Database db;
  ConsistentSchema schema = MakeFlightSchema("Flights", "Friends");
  ASSERT_TRUE(InstallFlightsGrid(&db, "Flights", {"Paris", "Rome"},
                                 {"d1"}, 1, {"NYC"}, {"AirA"})
                  .ok());
  ASSERT_TRUE(
      InstallCompleteFriends(&db, "Friends", MakeUserNames(3)).ok());
  auto queries = MakeWorstCaseConsistentQueries(3, 4);
  ConsistentCoordinator coordinator(&db, schema);
  auto solution = coordinator.Solve(queries);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_EQ(solution->size(), 3u);

  QuerySet set;
  ConsistentConversion conversion =
      ToEntangledQueries(schema, queries, &set);
  CoordinationSolution translated =
      ToCoordinationSolution(db, schema, queries, conversion, *solution);
  EXPECT_TRUE(ValidateSolution(db, set, translated).ok());
}

}  // namespace
}  // namespace entangled
