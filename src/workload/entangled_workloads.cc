#include "workload/entangled_workloads.h"

#include "common/logging.h"
#include "graph/generators.h"
#include "workload/social_data.h"

namespace entangled {

std::vector<QueryId> MakeStructuredWorkload(const Digraph& structure,
                                            const std::string& table,
                                            QuerySet* set) {
  ENTANGLED_CHECK(set != nullptr);
  std::vector<QueryId> ids;
  ids.reserve(static_cast<size_t>(structure.num_nodes()));
  for (NodeId i = 0; i < structure.num_nodes(); ++i) {
    const std::string me = SocialHandle(static_cast<size_t>(i));
    EntangledQuery q;
    q.name = "q_" + me;
    VarId x = set->NewVar("x_" + me);
    q.head.emplace_back("R",
                        std::vector<Term>{Term::Str(me), Term::Var(x)});
    q.body.emplace_back(table,
                        std::vector<Term>{Term::Var(x), Term::Str(me)});
    for (NodeId j : structure.Successors(i)) {
      const std::string partner = SocialHandle(static_cast<size_t>(j));
      VarId y = set->NewVar("y_" + me + "_" + partner);
      q.postconditions.emplace_back(
          "R", std::vector<Term>{Term::Str(partner), Term::Var(y)});
    }
    ids.push_back(set->AddQuery(std::move(q)));
  }
  return ids;
}

std::vector<QueryId> MakeListWorkload(int n, const std::string& table,
                                      QuerySet* set) {
  return MakeStructuredWorkload(MakeChain(n), table, set);
}

std::vector<QueryId> MakeScaleFreeWorkload(int n, int edges_per_node,
                                           const std::string& table,
                                           Rng* rng, QuerySet* set) {
  ENTANGLED_CHECK(rng != nullptr);
  return MakeStructuredWorkload(MakeScaleFree(n, edges_per_node, rng), table,
                                set);
}

std::vector<QueryId> MakeCycleWorkload(int n, const std::string& table,
                                       QuerySet* set) {
  return MakeStructuredWorkload(MakeCycle(n), table, set);
}

}  // namespace entangled
