#ifndef ENTANGLED_DB_ATOM_H_
#define ENTANGLED_DB_ATOM_H_

#include <ostream>
#include <string>
#include <vector>

#include "db/term.h"

namespace entangled {

/// \brief A relational atom `Rel(t1, ..., tk)` over variables and
/// constants.
///
/// Atoms appear in three places (paper §2.1): entangled-query bodies
/// (over database relations), heads and postconditions (over *answer*
/// relations, disjoint from the schema).  The struct is shared by all
/// three.
struct Atom {
  Atom() = default;
  Atom(std::string relation_in, std::vector<Term> terms_in)
      : relation(std::move(relation_in)), terms(std::move(terms_in)) {}

  std::string relation;
  std::vector<Term> terms;

  size_t arity() const { return terms.size(); }

  /// Whether every term is a constant.
  bool IsGround() const;

  /// Appends all variable ids occurring in the atom to `vars`
  /// (with duplicates, in positional order).
  void CollectVars(std::vector<VarId>* vars) const;

  /// "Rel(t1, t2)".
  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
};

/// \brief The paper's unifiability test on atom pairs (§2.3): same
/// relation, same arity, and no position where both atoms carry distinct
/// constants.
///
/// This is deliberately the *positionwise* notion used to build
/// coordination graphs; full unification (which also resolves repeated
/// variables) lives in core/unify.h and may still fail for a
/// positionwise-unifiable pair.
bool PositionwiseUnifiable(const Atom& a, const Atom& b);

std::ostream& operator<<(std::ostream& os, const Atom& atom);

/// Renders "A1(...), A2(...)"; `empty` is printed for an empty list
/// (the paper renders empty bodies as the empty-set symbol).
std::string AtomListToString(const std::vector<Atom>& atoms,
                             const std::string& empty = "{}");

}  // namespace entangled

#endif  // ENTANGLED_DB_ATOM_H_
