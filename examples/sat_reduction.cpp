// Executing Theorem 1: solving 3SAT *through* entangled-query
// coordination.  The database holds nothing but D = {0, 1} — every
// conjunctive query over it is trivially decidable — yet deciding
// whether a coordinating set exists decides satisfiability.  That is
// the paper's crisp separation between conjunctive-query hardness and
// coordination hardness (§3).
//
// Build & run:  ./build/examples/sat_reduction [num_vars] [num_clauses]

#include <cstdlib>
#include <iostream>

#include "algo/generic_solver.h"
#include "common/rng.h"
#include "common/timer.h"
#include "example_common.h"
#include "reductions/dpll.h"
#include "reductions/random_sat.h"
#include "reductions/theorem1.h"

using namespace entangled;
using namespace entangled::examples;

int main(int argc, char** argv) {
  int num_vars = argc > 1 ? std::atoi(argv[1]) : 4;
  int num_clauses = argc > 2 ? std::atoi(argv[2]) : 10;
  Rng rng(424242);
  CnfFormula formula = Random3Sat(num_vars, num_clauses, &rng);

  PrintBanner("3SAT via social coordination (Theorem 1)");
  std::cout << "formula: " << formula.ToString() << "\n\n";

  // Reference answer from a classical DPLL solver.
  DpllSolver dpll;
  WallTimer dpll_timer;
  auto reference = dpll.Solve(formula);
  double dpll_ms = dpll_timer.ElapsedMillis();
  std::cout << "DPLL says: "
            << (reference ? "satisfiable" : "unsatisfiable") << "  ("
            << dpll_ms << " ms, " << dpll.stats().decisions
            << " decisions)\n";

  // The Theorem-1 encoding.
  QuerySet queries;
  Database db;
  Theorem1Encoding encoding = EncodeTheorem1(formula, &queries, &db);
  std::cout << "\nencoded as " << queries.size()
            << " entangled queries over the database D = {0, 1}:\n";
  std::cout << queries.QueryToString(encoding.clause_query) << "\n";
  std::cout << queries.QueryToString(encoding.val_queries[0]) << "\n";
  std::cout << queries.QueryToString(encoding.true_queries[0]) << "\n";
  std::cout << queries.QueryToString(encoding.false_queries[0]) << "\n";
  std::cout << "... (" << (queries.size() - 4) << " more)\n\n";

  GenericSolver solver(&db);
  WallTimer coordination_timer;
  auto solution = solver.FindContaining(queries, encoding.clause_query);
  double coordination_ms = coordination_timer.ElapsedMillis();

  if (solution.ok()) {
    std::cout << "coordination says: satisfiable  (" << coordination_ms
              << " ms, " << solver.stats().db_queries
              << " trivial DB queries)\n";
    TruthAssignment decoded =
        encoding.DecodeAssignment(formula, *solution);
    std::cout << "decoded assignment:";
    for (int v = 1; v <= formula.num_vars; ++v) {
      std::cout << " x" << v << "="
                << (decoded[static_cast<size_t>(v)] ? 1 : 0);
    }
    std::cout << "\nassignment satisfies formula: "
              << (Satisfies(formula, decoded) ? "yes" : "NO (bug!)")
              << "\n";
    std::cout << "solution validates (Definition 1): "
              << ValidateSolution(db, queries, *solution) << "\n";
  } else if (solution.status().IsNotFound()) {
    std::cout << "coordination says: unsatisfiable  (" << coordination_ms
              << " ms)\n";
  } else {
    std::cout << "coordination gave up: " << solution.status() << "\n";
  }

  bool agree = solution.ok() == reference.has_value();
  std::cout << "\nDPLL and coordination agree: " << (agree ? "yes" : "NO")
            << "\n"
            << "(the coordination route is exponential in the worst case "
               "— that is Theorem 1's point)\n";
  return agree ? 0 : 1;
}
