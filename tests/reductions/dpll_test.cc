#include "reductions/dpll.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reductions/random_sat.h"

namespace entangled {
namespace {

CnfFormula Parse(int num_vars, std::vector<std::vector<int>> clauses) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& clause : clauses) {
    Clause c;
    for (int lit : clause) c.push_back(Literal{lit});
    f.clauses.push_back(std::move(c));
  }
  return f;
}

TEST(DpllTest, TrivialSat) {
  DpllSolver solver;
  auto result = solver.Solve(Parse(1, {{1}}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[1]);
}

TEST(DpllTest, TrivialUnsat) {
  DpllSolver solver;
  EXPECT_FALSE(solver.Solve(Parse(1, {{1}, {-1}})).has_value());
}

TEST(DpllTest, EmptyFormulaIsSat) {
  DpllSolver solver;
  EXPECT_TRUE(solver.Solve(Parse(3, {})).has_value());
}

TEST(DpllTest, UnitPropagationChains) {
  // x1, x1->x2, x2->x3 forces all three true without branching.
  DpllSolver solver;
  auto result = solver.Solve(Parse(3, {{1}, {-1, 2}, {-2, 3}}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[1]);
  EXPECT_TRUE((*result)[2]);
  EXPECT_TRUE((*result)[3]);
  EXPECT_EQ(solver.stats().decisions, 0u);
  EXPECT_GE(solver.stats().unit_propagations, 3u);
}

TEST(DpllTest, PureLiteralElimination) {
  // x1 appears only positively: pure.
  DpllSolver solver;
  auto result = solver.Solve(Parse(2, {{1, 2}, {1, -2}}));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[1]);
  EXPECT_GE(solver.stats().pure_eliminations, 1u);
}

TEST(DpllTest, ClassicUnsatPigeonhole) {
  // Two pigeons, one hole: p1, p2, not both.
  DpllSolver solver;
  EXPECT_FALSE(solver.Solve(Parse(2, {{1}, {2}, {-1, -2}})).has_value());
}

TEST(DpllTest, KnownUnsat3SatCore) {
  // All eight clauses over three variables: unsatisfiable.
  std::vector<std::vector<int>> clauses;
  for (int mask = 0; mask < 8; ++mask) {
    clauses.push_back({(mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                       (mask & 4) ? 3 : -3});
  }
  DpllSolver solver;
  EXPECT_FALSE(solver.Solve(Parse(3, clauses)).has_value());
}

TEST(DpllTest, ReturnedAssignmentsAlwaysSatisfy) {
  Rng rng(77);
  int sat_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    // Around the 3SAT phase transition (ratio ~4.3) for interesting
    // instances.
    CnfFormula f = Random3Sat(8, 8 * 4, &rng);
    DpllSolver solver;
    auto result = solver.Solve(f);
    if (result.has_value()) {
      ++sat_count;
      EXPECT_TRUE(Satisfies(f, *result));
    }
  }
  // Both outcomes must occur over 60 phase-transition draws.
  EXPECT_GT(sat_count, 0);
  EXPECT_LT(sat_count, 60);
}

TEST(DpllTest, AgreesWithExhaustiveCheckOnSmallFormulas) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    CnfFormula f =
        Random3Sat(5, 3 + static_cast<int>(rng.NextBounded(18)), &rng);
    // Exhaustive truth-table check.
    bool exhaustive_sat = false;
    for (int mask = 0; mask < (1 << 5) && !exhaustive_sat; ++mask) {
      TruthAssignment assignment(6, false);
      for (int v = 1; v <= 5; ++v) assignment[v] = (mask >> (v - 1)) & 1;
      exhaustive_sat = Satisfies(f, assignment);
    }
    DpllSolver solver;
    EXPECT_EQ(solver.Solve(f).has_value(), exhaustive_sat)
        << f.ToString();
  }
}

}  // namespace
}  // namespace entangled
