// Differential coverage of QuerySet::Subset's dense variable remap:
// evaluating a component through the remapped subset must produce —
// after translating witness variables back through the original_vars
// map — exactly the solution the pre-remap representation produces,
// while carrying only the component's own variables.
//
// The pre-remap path (PR 1 behaviour: copy the whole variable table so
// ids stay valid) is reconstructed explicitly here, since Subset no
// longer offers it.

#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/scc_coordination.h"
#include "common/rng.h"
#include "core/coordination_graph.h"
#include "core/parser.h"
#include "core/query.h"
#include "core/validator.h"
#include "db/database.h"
#include "workload/generator.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// The old Subset semantics: copy the chosen queries verbatim into a
/// set that owns a full copy of the parent's variable table.
QuerySet PreRemapSubset(const QuerySet& parent,
                        const std::vector<QueryId>& ids) {
  QuerySet subset;
  for (size_t v = 0; v < parent.num_vars(); ++v) {
    subset.NewVar(parent.var_name(static_cast<VarId>(v)));
  }
  for (QueryId id : ids) subset.AddQuery(parent.query(id));
  return subset;
}

class SubsetRemapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
    // Padding queries before and after the component inflate the
    // engine-wide variable count, so the density assertions below
    // demonstrate independence from it.
    for (int i = 0; i < 40; ++i) {
      const std::string n = std::to_string(i);
      ASSERT_TRUE(ParseQuery("pad" + n + ": { Dead" + n + "(m" + n +
                                 ") } Pad" + n + "(s" + n +
                                 ") :- Users(s" + n + ", 'user1').",
                             &set_)
                      .ok());
    }
    auto a = ParseQuery(
        "a: { R(B, x) } R(A, x) :- Users(x, 'user3').", &set_);
    auto b = ParseQuery(
        "b: { R(A, y) } R(B, y) :- Users(y, 'user3').", &set_);
    ASSERT_TRUE(a.ok() && b.ok());
    component_ = {*a, *b};
  }

  Database db_;
  QuerySet set_;
  std::vector<QueryId> component_;
};

TEST_F(SubsetRemapTest, SubsetCarriesOnlyComponentVariables) {
  std::vector<QueryId> original_ids;
  std::vector<VarId> original_vars;
  QuerySet subset = set_.Subset(component_, &original_ids, &original_vars);

  // The component uses exactly two variables (x and y); the padding
  // queries contributed 80+ to the parent set.
  EXPECT_EQ(subset.num_vars(), 2u);
  EXPECT_GT(set_.num_vars(), 80u);
  EXPECT_EQ(original_vars.size(), subset.num_vars());
  // The reverse map points at the parent's ids, names preserved.
  for (size_t v = 0; v < subset.num_vars(); ++v) {
    EXPECT_EQ(subset.var_name(static_cast<VarId>(v)),
              set_.var_name(original_vars[v]));
  }
  EXPECT_EQ(original_ids, component_);
}

TEST_F(SubsetRemapTest, RemappedEvaluationMatchesPreRemapPath) {
  std::vector<QueryId> original_ids;
  std::vector<VarId> original_vars;
  QuerySet remapped = set_.Subset(component_, &original_ids, &original_vars);
  QuerySet pre_remap = PreRemapSubset(set_, component_);

  SccCoordinator fast(&db_);
  SccCoordinator reference(&db_);
  auto fast_result = fast.Solve(remapped);
  auto reference_result = reference.Solve(pre_remap);
  ASSERT_TRUE(fast_result.ok()) << fast_result.status();
  ASSERT_TRUE(reference_result.ok()) << reference_result.status();

  // Same coordinating set (local ids are 0..k-1 in both).
  EXPECT_EQ(fast_result->queries, reference_result->queries);

  // Same witness once the remapped assignment is translated through
  // original_vars into the parent variable space (where the pre-remap
  // path already lives).
  Binding translated;
  fast_result->assignment.ForEach([&](VarId local, const Value& value) {
    translated.emplace(original_vars[static_cast<size_t>(local)], value);
  });
  EXPECT_EQ(translated, reference_result->assignment);

  // Both validate against their own variable spaces.
  CoordinationSolution fast_in_parent;
  fast_in_parent.queries = component_;
  fast_in_parent.assignment = translated;
  EXPECT_TRUE(ValidateSolution(db_, set_, fast_in_parent).ok());
}

TEST_F(SubsetRemapTest, RemapIsDeterministicFirstOccurrenceOrder) {
  std::vector<VarId> vars_a;
  std::vector<VarId> vars_b;
  QuerySet first = set_.Subset(component_, nullptr, &vars_a);
  QuerySet second = set_.Subset(component_, nullptr, &vars_b);
  EXPECT_EQ(vars_a, vars_b);
  EXPECT_EQ(first.ToString(), second.ToString());
}

// ---------------------------------------------------------------------------
// Generator-driven coverage: the stress harness's metamorphic checks
// lean on Subset + original_vars witness translation being correct for
// arbitrary components and arbitrary id orders, so the same properties
// are pinned here over generated workloads directly.
// ---------------------------------------------------------------------------

namespace {

/// The weakly connected components of `set` under its coordination
/// graph, each sorted ascending, in ascending smallest-member order.
std::vector<std::vector<QueryId>> WeakComponents(const QuerySet& set) {
  ExtendedCoordinationGraph graph(set);
  std::vector<QueryId> parent(set.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<QueryId(QueryId)> find = [&](QueryId q) {
    while (parent[static_cast<size_t>(q)] != q) {
      q = parent[static_cast<size_t>(q)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(q)])];
    }
    return q;
  };
  for (const ExtendedEdge& edge : graph.edges()) {
    parent[static_cast<size_t>(find(edge.from))] = find(edge.to);
  }
  std::map<QueryId, std::vector<QueryId>> by_root;
  for (QueryId q = 0; q < static_cast<QueryId>(set.size()); ++q) {
    by_root[find(q)].push_back(q);
  }
  std::vector<std::vector<QueryId>> components;
  for (auto& [root, members] : by_root) {
    components.push_back(std::move(members));
  }
  return components;
}

class GeneratedSubsetRemapTest
    : public ::testing::TestWithParam<GraphTopology> {};

}  // namespace

TEST_P(GeneratedSubsetRemapTest, ComponentEvaluationMatchesPreRemapPath) {
  GeneratorOptions options;
  options.seed = 101 + static_cast<uint64_t>(GetParam());
  options.topology = GetParam();
  options.num_queries = 20;
  options.sharing_density = 0.3;
  WorkloadGenerator generator(options);
  Database db;
  ASSERT_TRUE(generator.BuildDatabase(&db).ok());

  QuerySet set;
  for (const WorkloadEvent& event : generator.Generate().events) {
    for (const std::string& text : event.texts) {
      ASSERT_TRUE(ParseQuery(text, &set).ok()) << text;
    }
  }

  size_t solved = 0;
  for (const std::vector<QueryId>& component : WeakComponents(set)) {
    std::vector<QueryId> original_ids;
    std::vector<VarId> original_vars;
    QuerySet remapped = set.Subset(component, &original_ids, &original_vars);
    QuerySet pre_remap = PreRemapSubset(set, component);
    EXPECT_EQ(original_ids, component);
    EXPECT_LE(remapped.num_vars(), set.num_vars());

    SccCoordinator fast(&db);
    SccCoordinator reference(&db);
    auto fast_result = fast.Solve(remapped);
    auto reference_result = reference.Solve(pre_remap);
    ASSERT_EQ(fast_result.ok(), reference_result.ok())
        << TopologyName(GetParam()) << " component "
        << ::testing::PrintToString(component);
    if (!fast_result.ok()) continue;
    ++solved;
    EXPECT_EQ(fast_result->queries, reference_result->queries);

    // Witness translated through original_vars must reproduce the
    // pre-remap witness and validate in the parent variable space.
    Binding translated;
    fast_result->assignment.ForEach([&](VarId local, const Value& value) {
      translated.emplace(original_vars[static_cast<size_t>(local)], value);
    });
    EXPECT_EQ(translated, reference_result->assignment);
    CoordinationSolution in_parent;
    for (QueryId local : fast_result->queries) {
      in_parent.queries.push_back(
          component[static_cast<size_t>(local)]);
    }
    std::sort(in_parent.queries.begin(), in_parent.queries.end());
    in_parent.assignment = translated;
    EXPECT_TRUE(ValidateSolution(db, set, in_parent).ok());
  }
  EXPECT_GT(solved, 0u) << "sweep never exercised a successful component";
}

TEST_P(GeneratedSubsetRemapTest, WitnessTranslationSurvivesIdPermutation) {
  GeneratorOptions options;
  options.seed = 301 + static_cast<uint64_t>(GetParam());
  options.topology = GetParam();
  options.num_queries = 18;
  WorkloadGenerator generator(options);
  Database db;
  ASSERT_TRUE(generator.BuildDatabase(&db).ok());

  QuerySet set;
  for (const WorkloadEvent& event : generator.Generate().events) {
    for (const std::string& text : event.texts) {
      ASSERT_TRUE(ParseQuery(text, &set).ok()) << text;
    }
  }

  Rng rng(options.seed);
  for (const std::vector<QueryId>& component : WeakComponents(set)) {
    // Subset in a permuted id order: the solver may legitimately pick
    // a different (tie-broken) coordinating set, but whatever it
    // returns must translate into a valid parent-space solution, and
    // solvability itself is order-independent.
    std::vector<QueryId> permuted = component;
    rng.Shuffle(&permuted);

    std::vector<QueryId> original_ids;
    std::vector<VarId> original_vars;
    QuerySet subset = set.Subset(permuted, &original_ids, &original_vars);
    EXPECT_EQ(original_ids, permuted);

    SccCoordinator sorted_solver(&db);
    SccCoordinator permuted_solver(&db);
    auto sorted_result = sorted_solver.Solve(set.Subset(component));
    auto permuted_result = permuted_solver.Solve(subset);
    EXPECT_EQ(sorted_result.ok(), permuted_result.ok())
        << "solvability changed under component id permutation";
    if (!permuted_result.ok()) continue;

    CoordinationSolution in_parent;
    for (QueryId local : permuted_result->queries) {
      in_parent.queries.push_back(permuted[static_cast<size_t>(local)]);
    }
    std::sort(in_parent.queries.begin(), in_parent.queries.end());
    permuted_result->assignment.ForEach([&](VarId local, const Value& value) {
      in_parent.assignment.emplace(
          original_vars[static_cast<size_t>(local)], value);
    });
    EXPECT_TRUE(ValidateSolution(db, set, in_parent).ok())
        << "translated witness invalid for permuted component order";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, GeneratedSubsetRemapTest,
                         ::testing::ValuesIn(AllTopologies()),
                         [](const auto& info) {
                           return std::string(TopologyName(info.param));
                         });

}  // namespace
}  // namespace entangled
