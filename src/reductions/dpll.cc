#include "reductions/dpll.h"

#include <vector>

#include "common/logging.h"

namespace entangled {
namespace {

enum class VarState : uint8_t { kUnassigned, kTrue, kFalse };

struct SearchState {
  std::vector<VarState> values;  // 1-based
  const CnfFormula* formula;
  DpllStats* stats;
};

bool LiteralTrue(const SearchState& state, const Literal& literal) {
  VarState v = state.values[static_cast<size_t>(literal.var())];
  return literal.positive() ? v == VarState::kTrue : v == VarState::kFalse;
}

bool LiteralFalse(const SearchState& state, const Literal& literal) {
  VarState v = state.values[static_cast<size_t>(literal.var())];
  return literal.positive() ? v == VarState::kFalse : v == VarState::kTrue;
}

/// Applies unit propagation and pure-literal elimination to a fixpoint.
/// Returns false on conflict.  Assigned variables are appended to
/// `trail` for rollback.
bool Propagate(SearchState* state, std::vector<int32_t>* trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Unit propagation.
    for (const Clause& clause : state->formula->clauses) {
      int unassigned = 0;
      const Literal* unit = nullptr;
      bool satisfied = false;
      for (const Literal& literal : clause) {
        if (LiteralTrue(*state, literal)) {
          satisfied = true;
          break;
        }
        if (!LiteralFalse(*state, literal)) {
          ++unassigned;
          unit = &literal;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) return false;  // conflict
      if (unassigned == 1) {
        state->values[static_cast<size_t>(unit->var())] =
            unit->positive() ? VarState::kTrue : VarState::kFalse;
        trail->push_back(unit->var());
        ++state->stats->unit_propagations;
        changed = true;
      }
    }
    if (changed) continue;
    // Pure-literal elimination.
    std::vector<uint8_t> polarity(
        static_cast<size_t>(state->formula->num_vars) + 1, 0);
    for (const Clause& clause : state->formula->clauses) {
      bool satisfied = false;
      for (const Literal& literal : clause) {
        if (LiteralTrue(*state, literal)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const Literal& literal : clause) {
        if (LiteralFalse(*state, literal)) continue;
        polarity[static_cast<size_t>(literal.var())] |=
            literal.positive() ? 1 : 2;
      }
    }
    for (int32_t v = 1; v <= state->formula->num_vars; ++v) {
      if (state->values[static_cast<size_t>(v)] != VarState::kUnassigned) {
        continue;
      }
      uint8_t p = polarity[static_cast<size_t>(v)];
      if (p == 1 || p == 2) {
        state->values[static_cast<size_t>(v)] =
            p == 1 ? VarState::kTrue : VarState::kFalse;
        trail->push_back(v);
        ++state->stats->pure_eliminations;
        changed = true;
      }
    }
  }
  return true;
}

bool AllSatisfied(const SearchState& state) {
  for (const Clause& clause : state.formula->clauses) {
    bool satisfied = false;
    for (const Literal& literal : clause) {
      if (LiteralTrue(state, literal)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool Search(SearchState* state) {
  std::vector<int32_t> trail;
  if (!Propagate(state, &trail)) {
    for (int32_t v : trail) {
      state->values[static_cast<size_t>(v)] = VarState::kUnassigned;
    }
    return false;
  }
  if (AllSatisfied(*state)) return true;

  int32_t branch_var = 0;
  for (int32_t v = 1; v <= state->formula->num_vars; ++v) {
    if (state->values[static_cast<size_t>(v)] == VarState::kUnassigned) {
      branch_var = v;
      break;
    }
  }
  if (branch_var == 0) {
    // Everything assigned but some clause unsatisfied.
    for (int32_t v : trail) {
      state->values[static_cast<size_t>(v)] = VarState::kUnassigned;
    }
    return false;
  }
  for (VarState choice : {VarState::kTrue, VarState::kFalse}) {
    ++state->stats->decisions;
    state->values[static_cast<size_t>(branch_var)] = choice;
    if (Search(state)) return true;
    ++state->stats->backtracks;
    state->values[static_cast<size_t>(branch_var)] = VarState::kUnassigned;
  }
  for (int32_t v : trail) {
    state->values[static_cast<size_t>(v)] = VarState::kUnassigned;
  }
  return false;
}

}  // namespace

std::optional<TruthAssignment> DpllSolver::Solve(const CnfFormula& formula) {
  stats_ = DpllStats{};
  ENTANGLED_CHECK(formula.WellFormed()) << "malformed CNF formula";
  SearchState state;
  state.values.assign(static_cast<size_t>(formula.num_vars) + 1,
                      VarState::kUnassigned);
  state.formula = &formula;
  state.stats = &stats_;
  if (!Search(&state)) return std::nullopt;
  TruthAssignment assignment(static_cast<size_t>(formula.num_vars) + 1,
                             false);
  for (int32_t v = 1; v <= formula.num_vars; ++v) {
    assignment[static_cast<size_t>(v)] =
        state.values[static_cast<size_t>(v)] == VarState::kTrue;
  }
  ENTANGLED_CHECK(Satisfies(formula, assignment))
      << "DPLL returned a non-satisfying assignment";
  return assignment;
}

}  // namespace entangled
