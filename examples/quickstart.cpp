// Quickstart: the paper's very first example (§2.1), served through the
// session front door.  Gwyneth wants to fly with Chris to Zurich; Chris
// just wants a Zurich flight.  Each opens their own ClientSession,
// submits their entangled query, and reads the coordinated answer off
// their session's event stream — both are notified of the same
// coordinating set.
//
//   q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
//   q2 = { }           R(Chris, y)   :- Flights(y, Zurich)
//
// Build & run:  ./build/quickstart

#include <iostream>

#include "example_common.h"

using namespace entangled;
using namespace entangled::examples;

int main() {
  PrintBanner("Quickstart: Gwyneth & Chris fly to Zurich (paper §2.1)");

  // 1. A tiny flight database.
  Database db;
  Relation* flights = *db.CreateRelation("Flights", {"flightId", "dest"});
  for (auto [id, dest] : std::initializer_list<std::pair<int, const char*>>{
           {99, "Paris"}, {101, "Zurich"}, {102, "Zurich"}}) {
    InsertOrDie(flights, {Value::Int(id), Value::Str(dest)});
  }

  // 2. Two users, two sessions, two entangled queries in the paper's
  // concrete syntax.
  ExampleFrontDoor door(&db);
  ClientSession* gwyneth = door.Connect("Gwyneth");
  ClientSession* chris = door.Connect("Chris");
  door.SubmitOrDie(
      gwyneth, "q1: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).");
  door.SubmitOrDie(
      chris, "q2: { } R(Chris, y) :- Flights(y, Zurich).");

  // 3. Coordinate (Definition 1) and let each user poll their answers —
  // the Delivery events are self-contained, so nothing here touches
  // engine internals.
  std::cout << "\ncoordinating sets delivered: " << door.Coordinate()
            << "\n\n";
  Status valid = door.PrintInboxes();

  // 4. A typed rejection for flavour: a malformed query bounces with a
  // reason a server can switch on, not just a string.
  SubmitOutcome bad = chris->Submit("not a query at all");
  std::cout << "\nmalformed submission bounces as: "
            << RejectReasonName(bad.reason) << "\n";

  // 5. Never trust a solver: PrintInboxes re-checked Definition 1.
  return ReportValidation(valid);
}
