#include "graph/digraph.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace entangled {

Digraph::Digraph(NodeId num_nodes) {
  ENTANGLED_CHECK_GE(num_nodes, 0);
  out_.resize(static_cast<size_t>(num_nodes));
  in_.resize(static_cast<size_t>(num_nodes));
}

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::AddEdge(NodeId u, NodeId v) {
  ENTANGLED_CHECK(u >= 0 && u < num_nodes()) << "bad source " << u;
  ENTANGLED_CHECK(v >= 0 && v < num_nodes()) << "bad target " << v;
  out_[static_cast<size_t>(u)].push_back(v);
  in_[static_cast<size_t>(v)].push_back(u);
  ++num_edges_;
}

bool Digraph::AddEdgeUnique(NodeId u, NodeId v) {
  if (HasEdge(u, v)) return false;
  AddEdge(u, v);
  return true;
}

bool Digraph::HasEdge(NodeId u, NodeId v) const {
  ENTANGLED_CHECK(u >= 0 && u < num_nodes()) << "bad source " << u;
  const auto& successors = out_[static_cast<size_t>(u)];
  return std::find(successors.begin(), successors.end(), v) !=
         successors.end();
}

const std::vector<NodeId>& Digraph::Successors(NodeId u) const {
  ENTANGLED_CHECK(u >= 0 && u < num_nodes()) << "bad node " << u;
  return out_[static_cast<size_t>(u)];
}

const std::vector<NodeId>& Digraph::Predecessors(NodeId v) const {
  ENTANGLED_CHECK(v >= 0 && v < num_nodes()) << "bad node " << v;
  return in_[static_cast<size_t>(v)];
}

Digraph Digraph::InducedSubgraph(const std::vector<bool>& keep,
                                 std::vector<NodeId>* old_to_new) const {
  ENTANGLED_CHECK_EQ(keep.size(), static_cast<size_t>(num_nodes()));
  std::vector<NodeId> mapping(keep.size(), -1);
  NodeId next = 0;
  for (size_t v = 0; v < keep.size(); ++v) {
    if (keep[v]) mapping[v] = next++;
  }
  Digraph result(next);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (mapping[static_cast<size_t>(u)] < 0) continue;
    for (NodeId v : Successors(u)) {
      if (mapping[static_cast<size_t>(v)] < 0) continue;
      result.AddEdge(mapping[static_cast<size_t>(u)],
                     mapping[static_cast<size_t>(v)]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return result;
}

Digraph Digraph::Reversed() const {
  Digraph result(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : Successors(u)) result.AddEdge(v, u);
  }
  return result;
}

std::string Digraph::ToString() const {
  std::ostringstream out;
  out << "Digraph(" << num_nodes() << " nodes, " << num_edges_ << " edges)";
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (Successors(u).empty()) continue;
    out << "\n  " << u << " ->";
    for (NodeId v : Successors(u)) out << " " << v;
  }
  return out.str();
}

}  // namespace entangled
