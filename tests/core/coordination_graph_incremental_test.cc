// The incremental half of ExtendedCoordinationGraph: AddQuery must
// agree edge-for-edge with the batch constructor, and RetireQueries
// must unlink retired queries from the edge lists and the unification
// index (so later arrivals no longer match them).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/coordination_graph.h"
#include "core/parser.h"

namespace entangled {
namespace {

/// Canonical edge list of the live graph, via the per-query accessors
/// (exact regardless of retirement).
std::vector<ExtendedEdge> LiveEdges(const ExtendedCoordinationGraph& graph) {
  std::vector<ExtendedEdge> edges;
  for (QueryId q = 0; q < static_cast<QueryId>(graph.num_queries()); ++q) {
    if (!graph.IsLive(q)) continue;
    for (size_t e : graph.OutEdges(q)) edges.push_back(graph.edge(e));
  }
  std::sort(edges.begin(), edges.end(),
            [](const ExtendedEdge& a, const ExtendedEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.post_index != b.post_index)
                return a.post_index < b.post_index;
              if (a.to != b.to) return a.to < b.to;
              return a.head_index < b.head_index;
            });
  return edges;
}

QuerySet ParseAll(const std::vector<std::string>& texts) {
  QuerySet set;
  for (const std::string& text : texts) {
    auto id = ParseQuery(text, &set);
    EXPECT_TRUE(id.ok()) << text << ": " << id.status();
  }
  return set;
}

std::vector<std::string> RandomWorkload(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> texts;
  size_t n = 4 + rng.NextBounded(10);
  for (size_t i = 0; i < n; ++i) {
    const std::string rel = "R" + std::to_string(rng.NextBounded(3));
    const std::string partner = "R" + std::to_string(rng.NextBounded(3));
    const std::string me = "N" + std::to_string(i);
    const std::string other = "N" + std::to_string(rng.NextBounded(n));
    texts.push_back("q" + std::to_string(i) + ": { " + partner + "('" +
                    other + "', x) } " + rel + "('" + me +
                    "', x) :- Users(x, 'u').");
  }
  return texts;
}

TEST(IncrementalCoordinationGraphTest, AddQueryMatchesBatchBuild) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QuerySet set = ParseAll(RandomWorkload(seed * 71));
    ExtendedCoordinationGraph batch(set);
    ExtendedCoordinationGraph incremental;
    for (QueryId q = 0; q < static_cast<QueryId>(set.size()); ++q) {
      incremental.AddQuery(set, q);
    }
    EXPECT_EQ(LiveEdges(incremental), LiveEdges(batch)) << "seed " << seed;
    EXPECT_EQ(incremental.num_live(), set.size());
  }
}

TEST(IncrementalCoordinationGraphTest, RetireMatchesBatchOverSurvivors) {
  // Retiring queries from the incremental graph must leave exactly the
  // edges a batch build over the surviving queries would produce
  // (modulo the retired ids, which simply vanish).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<std::string> texts = RandomWorkload(seed * 193);
    QuerySet set = ParseAll(texts);
    ExtendedCoordinationGraph graph;
    for (QueryId q = 0; q < static_cast<QueryId>(set.size()); ++q) {
      graph.AddQuery(set, q);
    }
    Rng rng(seed);
    std::vector<QueryId> retired;
    for (QueryId q = 0; q < static_cast<QueryId>(set.size()); ++q) {
      if (rng.NextBool(0.4)) retired.push_back(q);
    }
    if (retired.empty()) retired.push_back(0);
    graph.RetireQueries(retired);
    EXPECT_EQ(graph.num_live(), set.size() - retired.size());

    std::vector<ExtendedEdge> expected;
    {
      ExtendedCoordinationGraph batch(set);
      for (const ExtendedEdge& e : LiveEdges(batch)) {
        bool touches_retired =
            std::find(retired.begin(), retired.end(), e.from) !=
                retired.end() ||
            std::find(retired.begin(), retired.end(), e.to) != retired.end();
        if (!touches_retired) expected.push_back(e);
      }
    }
    EXPECT_EQ(LiveEdges(graph), expected) << "seed " << seed;
    for (QueryId q : retired) {
      EXPECT_FALSE(graph.IsLive(q));
      EXPECT_TRUE(graph.OutEdges(q).empty());
      EXPECT_TRUE(graph.InEdges(q).empty());
    }
  }
}

TEST(IncrementalCoordinationGraphTest, RetiredHeadsLeaveTheIndex) {
  QuerySet set = ParseAll({
      "a: { R('B', x) } R('A', x) :- Users(x, 'u').",
      "b: { R('A', y) } R('B', y) :- Users(y, 'u').",
  });
  ExtendedCoordinationGraph graph;
  graph.AddQuery(set, 0);
  graph.AddQuery(set, 1);
  ASSERT_EQ(LiveEdges(graph).size(), 2u);
  graph.RetireQueries({0, 1});
  EXPECT_EQ(graph.num_live(), 0u);

  // A newcomer identical to `a` finds no live partner: the retired
  // atoms are really gone from the unification buckets.
  auto c = ParseQuery("c: { R('A', z) } R('B', z) :- Users(z, 'u').", &set);
  ASSERT_TRUE(c.ok());
  graph.AddQuery(set, *c);
  EXPECT_TRUE(LiveEdges(graph).empty());

  // And a fresh matching partner re-links (freed edge slots recycle).
  auto d = ParseQuery("d: { R('B', w) } R('A', w) :- Users(w, 'u').", &set);
  ASSERT_TRUE(d.ok());
  graph.AddQuery(set, *d);
  std::vector<ExtendedEdge> edges = LiveEdges(graph);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].from, *c);
  EXPECT_EQ(edges[0].to, *d);
  EXPECT_EQ(edges[1].from, *d);
  EXPECT_EQ(edges[1].to, *c);
}

TEST(IncrementalCoordinationGraphTest, SelfLoopSurvivesRoundTrip) {
  QuerySet set = ParseAll({
      "loop: { R('A', x) } R('A', x) :- Users(x, 'u').",
  });
  ExtendedCoordinationGraph graph;
  graph.AddQuery(set, 0);
  ASSERT_EQ(LiveEdges(graph).size(), 1u);
  EXPECT_EQ(graph.edge(graph.OutEdges(0)[0]).from, 0);
  EXPECT_EQ(graph.edge(graph.OutEdges(0)[0]).to, 0);
  graph.RetireQueries({0});
  EXPECT_TRUE(LiveEdges(graph).empty());
  EXPECT_EQ(graph.num_live(), 0u);
}

}  // namespace
}  // namespace entangled
