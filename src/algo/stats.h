#ifndef ENTANGLED_ALGO_STATS_H_
#define ENTANGLED_ALGO_STATS_H_

#include <cstdint>
#include <string>

namespace entangled {

/// \brief Work counters shared by all coordination solvers.
///
/// The paper reports wall-clock time but *reasons* in database
/// round-trips and graph-processing overhead (§4 "Running Time", §6.1
/// Figure 6); these counters expose both so experiments can compare the
/// hardware-independent quantities directly.
struct SolverStats {
  uint64_t db_queries = 0;      ///< conjunctive queries sent to the DB
  uint64_t unifications = 0;    ///< atom-pair unification attempts
  uint64_t graph_nodes = 0;     ///< coordination-graph vertices
  uint64_t graph_edges = 0;     ///< coordination-graph edges (collapsed)
  uint64_t num_sccs = 0;        ///< strongly connected components
  uint64_t candidate_values = 0;  ///< |V(Q)| (consistent algorithm)
  uint64_t cleaning_rounds = 0;   ///< cleaning-phase sweeps (consistent)
  uint64_t memo_hits = 0;       ///< sweep steps served from an EvalMemo
  double graph_seconds = 0.0;   ///< graph build + SCC + condensation time
  double total_seconds = 0.0;   ///< end-to-end Solve time

  void Reset() { *this = SolverStats{}; }
  std::string ToString() const;
};

inline std::string SolverStats::ToString() const {
  std::string out = "SolverStats{db_queries=" + std::to_string(db_queries);
  out += ", unifications=" + std::to_string(unifications);
  out += ", graph=" + std::to_string(graph_nodes) + "n/" +
         std::to_string(graph_edges) + "e/" + std::to_string(num_sccs) +
         "scc";
  if (candidate_values > 0) {
    out += ", values=" + std::to_string(candidate_values);
    out += ", cleaning_rounds=" + std::to_string(cleaning_rounds);
  }
  if (memo_hits > 0) out += ", memo_hits=" + std::to_string(memo_hits);
  out += ", graph_s=" + std::to_string(graph_seconds);
  out += ", total_s=" + std::to_string(total_seconds) + "}";
  return out;
}

}  // namespace entangled

#endif  // ENTANGLED_ALGO_STATS_H_
