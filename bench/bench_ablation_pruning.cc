// Ablation A3 — postcondition pre-cleaning on/off (§6.1).
//
// The implementation section describes iteratively removing queries
// whose postconditions are unsatisfiable before building the components
// graph.  This bench poisons a fraction of a 100-query list workload
// with postconditions that match no head and compares the sweep with
// and without pre-cleaning.  Pre-cleaning removes doomed queries (and
// their transitive dependants) before any unification or grounding
// work happens; without it, each doomed component is discovered during
// the reverse-topological sweep instead.

#include <benchmark/benchmark.h>

#include "algo/scc_coordination.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr int kNumQueries = 100;

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(
        InstallSocialTable(database, "Users", kSlashdotTableSize).ok());
    return database;
  }();
  return *db;
}

/// List workload with `poisoned_percent` of the queries given an extra
/// postcondition over a relation nobody answers.
QuerySet MakePoisonedWorkload(int poisoned_percent, uint64_t seed) {
  QuerySet set;
  std::vector<QueryId> ids = MakeListWorkload(kNumQueries, "Users", &set);
  Rng rng(seed);
  for (QueryId id : ids) {
    if (rng.NextBounded(100) < static_cast<uint64_t>(poisoned_percent)) {
      VarId v = set.NewVar("poison");
      set.mutable_query(id).postconditions.emplace_back(
          "Unanswerable", std::vector<Term>{Term::Var(v)});
    }
  }
  return set;
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Ablation A3: SCC pre-cleaning on/off, 100-query list with "
      "poisoned postconditions",
      {"poisoned_percent", "precleaned_ms", "no_preclean_ms",
       "precleaned_db_queries", "no_preclean_db_queries"});
  for (int percent : {0, 10, 25, 50, 75}) {
    QuerySet set = MakePoisonedWorkload(percent, /*seed=*/percent + 1);
    uint64_t db_with = 0;
    uint64_t db_without = 0;
    SccOptions with_pruning;
    with_pruning.prune_postconditions = true;
    SccOptions without_pruning;
    without_pruning.prune_postconditions = false;
    double with_ms = benchutil::MeanMillis(5, [&] {
      SccCoordinator coordinator(&SocialDb(), with_pruning);
      auto result = coordinator.Solve(set);
      ENTANGLED_CHECK(result.ok() || result.status().IsNotFound());
      db_with = coordinator.stats().db_queries;
    });
    double without_ms = benchutil::MeanMillis(5, [&] {
      SccCoordinator coordinator(&SocialDb(), without_pruning);
      auto result = coordinator.Solve(set);
      ENTANGLED_CHECK(result.ok() || result.status().IsNotFound());
      db_without = coordinator.stats().db_queries;
    });
    benchutil::PrintRow({static_cast<double>(percent), with_ms, without_ms,
                         static_cast<double>(db_with),
                         static_cast<double>(db_without)});
  }
  benchutil::PrintNote(
      "expected: identical results; pre-cleaning cost is negligible and "
      "both modes issue the same DB queries (failures short-circuit "
      "before grounding)");
}

void BM_PoisonedSweep(benchmark::State& state) {
  QuerySet set = MakePoisonedWorkload(static_cast<int>(state.range(0)),
                                      /*seed=*/11);
  SccOptions options;
  options.prune_postconditions = state.range(1) != 0;
  for (auto _ : state) {
    SccCoordinator coordinator(&SocialDb(), options);
    benchmark::DoNotOptimize(coordinator.Solve(set).ok());
  }
}
BENCHMARK(BM_PoisonedSweep)->Args({50, 1})->Args({50, 0});

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
