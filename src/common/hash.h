#ifndef ENTANGLED_COMMON_HASH_H_
#define ENTANGLED_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace entangled {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe with a
/// 64-bit constant).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// Hash functor for std::pair, usable as unordered_map's Hash argument.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

/// Hash functor for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const auto& item : v) HashCombine(&seed, item);
    return seed;
  }
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_HASH_H_
