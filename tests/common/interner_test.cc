#include "common/interner.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(InternerTest, InternIsIdempotent) {
  StringInterner interner;
  Symbol a = interner.Intern("flights");
  Symbol b = interner.Intern("flights");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, DistinctStringsGetDistinctSymbols) {
  StringInterner interner;
  Symbol a = interner.Intern("a");
  Symbol b = interner.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, RoundTrip) {
  StringInterner interner;
  Symbol a = interner.Intern("hotels");
  EXPECT_EQ(interner.ToString(a), "hotels");
}

TEST(InternerTest, LookupWithoutIntern) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("ghost"), kInvalidSymbol);
  interner.Intern("ghost");
  EXPECT_NE(interner.Lookup("ghost"), kInvalidSymbol);
}

TEST(InternerTest, ContainsChecksRange) {
  StringInterner interner;
  Symbol a = interner.Intern("x");
  EXPECT_TRUE(interner.Contains(a));
  EXPECT_FALSE(interner.Contains(kInvalidSymbol));
  EXPECT_FALSE(interner.Contains(a + 1));
}

TEST(InternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  Symbol empty = interner.Intern("");
  EXPECT_EQ(interner.ToString(empty), "");
}

TEST(InternerDeathTest, ToStringOnUnknownSymbolAborts) {
  StringInterner interner;
  EXPECT_DEATH(interner.ToString(3), "unknown symbol");
}

TEST(InternerTest, ReferencesStayStableAcrossGrowth) {
  StringInterner interner;
  const std::string& first = interner.ToString(interner.Intern("stable"));
  for (int i = 0; i < 10000; ++i) {
    interner.Intern("filler_" + std::to_string(i));
  }
  // The deque-backed store never moves an element, so string-valued
  // Values can hand out AsString() references forever.
  EXPECT_EQ(first, "stable");
  EXPECT_EQ(&first, &interner.ToString(interner.Lookup("stable")));
}

TEST(InternerTest, ConcurrentInterningAgrees) {
  StringInterner interner;
  constexpr int kThreads = 8;
  constexpr int kStrings = 500;
  std::vector<std::vector<Symbol>> seen(kThreads,
                                        std::vector<Symbol>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&interner, &seen, t] {
      for (int i = 0; i < kStrings; ++i) {
        seen[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            interner.Intern("s" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every thread resolved each string to the same symbol.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(interner.size(), static_cast<size_t>(kStrings));
}

TEST(InternerTest, GlobalValueInternerIsOneInstance) {
  StringInterner& a = GlobalValueInterner();
  StringInterner& b = GlobalValueInterner();
  EXPECT_EQ(&a, &b);
  Symbol s = a.Intern("global_interner_test_string");
  EXPECT_EQ(b.Lookup("global_interner_test_string"), s);
}

}  // namespace
}  // namespace entangled
