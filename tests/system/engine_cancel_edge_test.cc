// Directed coverage of Cancel's edge cases on the incremental core:
// unknown / never-issued ids, already-retired ids, double cancellation,
// and — the interesting one — cancelling the last member of a dirty
// component, which must drop the now-empty component from the
// dirty worklist instead of leaving a stale root for Flush to trip on.

#include <vector>

#include <gtest/gtest.h>

#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class EngineCancelEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
  }

  Database db_;
};

TEST_F(EngineCancelEdgeTest, CancelUnknownIdReturnsFalse) {
  CoordinationEngine engine(&db_);
  EXPECT_FALSE(engine.Cancel(-1));
  EXPECT_FALSE(engine.Cancel(0));    // no query was ever submitted
  EXPECT_FALSE(engine.Cancel(999));  // far beyond any issued id
  EXPECT_EQ(engine.stats().cancelled, 0u);
}

TEST_F(EngineCancelEdgeTest, CancelRetiredIdReturnsFalse) {
  CoordinationEngine engine(&db_);
  auto solo = engine.Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(solo.ok());
  // The loner coordinated (and retired) on arrival.
  EXPECT_EQ(engine.stats().coordinating_sets, 1u);
  EXPECT_FALSE(engine.IsPending(*solo));
  EXPECT_FALSE(engine.Cancel(*solo));
  EXPECT_EQ(engine.stats().cancelled, 0u);
}

TEST_F(EngineCancelEdgeTest, DoubleCancelReturnsFalseAndCountsOnce) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  auto stuck = engine.Submit("s: { Nobody(m) } W(s) :- Users(s, 'user1').");
  ASSERT_TRUE(stuck.ok());
  EXPECT_TRUE(engine.Cancel(*stuck));
  EXPECT_FALSE(engine.Cancel(*stuck));
  EXPECT_EQ(engine.stats().cancelled, 1u);
  EXPECT_TRUE(engine.PendingQueries().empty());
}

TEST_F(EngineCancelEdgeTest, CancellingLastMemberDropsDirtyComponent) {
  EngineOptions options;
  options.evaluate_every = 0;  // the singleton stays dirty, unevaluated
  CoordinationEngine engine(&db_, options);
  auto solo = engine.Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(solo.ok());
  EXPECT_TRUE(engine.Cancel(*solo));
  // The component is empty now; Flush must neither evaluate it nor
  // deliver anything (a stale dirty root would do one or the other,
  // or CHECK-fail building an empty task).
  EXPECT_EQ(engine.Flush(), 0u);
  EXPECT_EQ(engine.stats().evaluations, 0u);
  EXPECT_EQ(engine.stats().coordinating_sets, 0u);
  EXPECT_TRUE(engine.PendingQueries().empty());
}

TEST_F(EngineCancelEdgeTest, CancellingWholeDirtyPairDropsComponent) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  auto a = engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').");
  auto b = engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(engine.ComponentOf(*a).size(), 2u);
  EXPECT_TRUE(engine.Cancel(*a));
  EXPECT_TRUE(engine.Cancel(*b));  // last member of the dirty remnant
  EXPECT_EQ(engine.Flush(), 0u);
  EXPECT_EQ(engine.stats().evaluations, 0u);
  EXPECT_TRUE(engine.PendingQueries().empty());
}

TEST_F(EngineCancelEdgeTest, SurvivorOfCancelledPartnerStaysEvaluable) {
  EngineOptions options;
  options.evaluate_every = 0;
  CoordinationEngine engine(&db_, options);
  // A pair whose coordination is mutual, plus the pairless loner shape
  // after cancellation: cancelling `a` leaves `b` stuck (its post now
  // targets nobody), and cancelling a loner's whole component must
  // still let unrelated components evaluate.
  auto a = engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').");
  auto b = engine.Submit("b: { R(A, y) } R(B, y) :- Users(y, 'user1').");
  auto solo = engine.Submit("solo: { } K(w) :- Users(w, 'user5').");
  ASSERT_TRUE(a.ok() && b.ok() && solo.ok());
  EXPECT_TRUE(engine.Cancel(*a));
  // b's fragment was re-marked dirty, solo is dirty since arrival:
  // exactly these two components evaluate; only solo delivers.
  EXPECT_EQ(engine.Flush(), 1u);
  EXPECT_EQ(engine.stats().evaluations, 2u);
  EXPECT_FALSE(engine.IsPending(*solo));
  EXPECT_TRUE(engine.IsPending(*b));
  // And b, provably still stuck, is not re-examined by the next flush.
  EXPECT_EQ(engine.Flush(), 0u);
  EXPECT_EQ(engine.stats().evaluations, 2u);
}

TEST_F(EngineCancelEdgeTest, LegacyPathMatchesOnCancelEdgeCases) {
  for (bool incremental : {true, false}) {
    EngineOptions options;
    options.incremental = incremental;
    options.evaluate_every = 0;
    CoordinationEngine engine(&db_, options);
    EXPECT_FALSE(engine.Cancel(3));
    auto a = engine.Submit("a: { R(B, x) } R(A, x) :- Users(x, 'user1').");
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(engine.Cancel(*a));
    EXPECT_FALSE(engine.Cancel(*a));
    EXPECT_EQ(engine.Flush(), 0u);
    EXPECT_EQ(engine.stats().cancelled, 1u) << "incremental=" << incremental;
  }
}

}  // namespace
}  // namespace entangled
