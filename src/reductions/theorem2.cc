#include "reductions/theorem2.h"

#include "common/logging.h"

namespace entangled {
namespace {

std::string VarRelation(int32_t var) { return "R" + std::to_string(var); }

Term LiteralValue(const Literal& literal) {
  return Term::Int(literal.positive() ? 1 : 0);
}

Term NegatedLiteralValue(const Literal& literal) {
  return Term::Int(literal.positive() ? 0 : 1);
}

}  // namespace

Theorem2Encoding EncodeTheorem2(const CnfFormula& formula, QuerySet* set,
                                Database* db) {
  ENTANGLED_CHECK(set != nullptr);
  ENTANGLED_CHECK(db != nullptr);
  ENTANGLED_CHECK(formula.WellFormed());
  for (const Clause& clause : formula.clauses) {
    for (size_t i = 0; i < clause.size(); ++i) {
      for (size_t j = i + 1; j < clause.size(); ++j) {
        ENTANGLED_CHECK(clause[i].var() != clause[j].var())
            << "the staircase gadget needs distinct variables per clause";
      }
    }
  }

  if (!db->Contains("D")) {
    Relation* d = *db->CreateRelation("D", {"value"});
    ENTANGLED_CHECK(d->Insert({Value::Int(0)}).ok());
    ENTANGLED_CHECK(d->Insert({Value::Int(1)}).ok());
  }

  Theorem2Encoding encoding;
  // q(xj) = {} Rj(xj) :- D(xj).
  for (int32_t v = 1; v <= formula.num_vars; ++v) {
    EntangledQuery q;
    q.name = "q(x" + std::to_string(v) + ")";
    VarId x = set->NewVar("x" + std::to_string(v));
    q.head.emplace_back(VarRelation(v), std::vector<Term>{Term::Var(x)});
    q.body.emplace_back("D", std::vector<Term>{Term::Var(x)});
    encoding.var_queries.push_back(set->AddQuery(std::move(q)));
  }
  // Per clause: the one-literal-witness staircase.
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    const Clause& clause = formula.clauses[c];
    const std::string clause_relation = "C" + std::to_string(c + 1);
    std::vector<QueryId> ids;
    for (size_t pos = 0; pos < clause.size(); ++pos) {
      EntangledQuery q;
      q.name = clause_relation + "-lit" + std::to_string(pos + 1);
      // Own literal must hold ...
      q.postconditions.emplace_back(
          VarRelation(clause[pos].var()),
          std::vector<Term>{LiteralValue(clause[pos])});
      // ... and every earlier literal must NOT hold.
      for (size_t earlier = 0; earlier < pos; ++earlier) {
        q.postconditions.emplace_back(
            VarRelation(clause[earlier].var()),
            std::vector<Term>{NegatedLiteralValue(clause[earlier])});
      }
      q.head.emplace_back(clause_relation,
                          std::vector<Term>{Term::Int(1)});
      ids.push_back(set->AddQuery(std::move(q)));
    }
    encoding.clause_queries.push_back(std::move(ids));
  }
  return encoding;
}

TruthAssignment Theorem2Encoding::DecodeAssignment(
    const CnfFormula& formula, const CoordinationSolution& sol) const {
  TruthAssignment assignment(static_cast<size_t>(formula.num_vars) + 1,
                             true);
  // Each participating literal query pins its own literal's polarity and
  // the negation of the earlier ones.
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    const Clause& clause = formula.clauses[c];
    for (size_t pos = 0; pos < clause.size(); ++pos) {
      if (!sol.Contains(clause_queries[c][pos])) continue;
      assignment[static_cast<size_t>(clause[pos].var())] =
          clause[pos].positive();
      for (size_t earlier = 0; earlier < pos; ++earlier) {
        assignment[static_cast<size_t>(clause[earlier].var())] =
            !clause[earlier].positive();
      }
    }
  }
  return assignment;
}

}  // namespace entangled
