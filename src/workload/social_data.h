#ifndef ENTANGLED_WORKLOAD_SOCIAL_DATA_H_
#define ENTANGLED_WORKLOAD_SOCIAL_DATA_H_

#include <cstddef>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "db/database.h"

namespace entangled {

/// Row count of the Slashdot table used by the paper's §6.1 experiments.
inline constexpr size_t kSlashdotTableSize = 82168;

/// \brief Installs the synthetic stand-in for the paper's Slashdot
/// social-network table: relation `name`(id, handle) with `num_rows`
/// rows (id = 0..n-1, handle = "user<i>").
///
/// Substitution note (DESIGN.md §1): the original data is a crawl we do
/// not have; the experiments only require a large relation in which
/// every query body has at least one witness, which this preserves.
/// Handles are unique, so a body atom `name`(x, 'user<k>') matches
/// exactly one row through the hash index — the paper's "simple bodies"
/// regime.
Status InstallSocialTable(Database* db, const std::string& name,
                          size_t num_rows);

/// \brief Handle of row `index` ("user<index>").
std::string SocialHandle(size_t index);

}  // namespace entangled

#endif  // ENTANGLED_WORKLOAD_SOCIAL_DATA_H_
