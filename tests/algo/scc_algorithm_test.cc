#include "algo/scc_coordination.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/validator.h"
#include "graph/digraph.h"
#include "workload/entangled_workloads.h"
#include "workload/scenarios.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class SccAlgorithmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 64).ok());
  }
  Database db_;
};

TEST_F(SccAlgorithmTest, FlightHotelWalkthrough) {
  // §4: {qC, qG} coordinate on Paris; qJ fails (no flight is both the
  // Paris flight and an Athens flight), and qW fails transitively.
  Database db;
  QuerySet set;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &set);
  SccCoordinator coordinator(&db);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{ids.qc, ids.qg}));
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());

  // Chris and Guy share flight and hotel, both in Paris.
  VarId x1 = set.query(ids.qc).head[0].terms[1].var();
  VarId y1 = set.query(ids.qg).head[0].terms[1].var();
  EXPECT_EQ(result->assignment.at(x1), result->assignment.at(y1));

  // Only the {qC, qG} component grounded successfully.
  ASSERT_EQ(coordinator.successful_sets().size(), 1u);
  EXPECT_EQ(coordinator.successful_sets()[0],
            (std::vector<QueryId>{ids.qc, ids.qg}));
  // One DB query for {qC,qG}; qJ's combined query also goes to the DB
  // and fails; qW is skipped because its successor failed.
  EXPECT_EQ(coordinator.stats().db_queries, 2u);
  EXPECT_EQ(coordinator.stats().num_sccs, 3u);
}

TEST_F(SccAlgorithmTest, Example1GwynethJoinsTheBand) {
  // Safe but non-unique: the band pair coordinates mutually, Gwyneth
  // hangs off Chris.  The algorithm must return all three (R(gwyneth)).
  QuerySet set;
  auto ids = ParseQueries(
      "chris:   { R(Guy, x) }     R(Chris, x)   :- Users(x, 'user1').\n"
      "guy:     { R(Chris, y) }   R(Guy, y)     :- Users(y, 'user1').\n"
      "gwyneth: { R(Chris, z) }   R(Gwyneth, z) :- Users(z, 'user1').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 3u);
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
  // Both R(chris) = {chris, guy} and R(gwyneth) = all three succeed.
  EXPECT_EQ(coordinator.successful_sets().size(), 2u);
}

TEST_F(SccAlgorithmTest, Section4ComponentsExample) {
  // Components graph:  q3+q4 -> q1+q2 <- q5+q6.  Discovered
  // coordinating sets: {q1,q2}, {q1,q2,q3,q4}, {q1,q2,q5,q6}; a
  // maximum one (size 4) is returned.
  Digraph structure(6);
  structure.AddEdge(0, 1);
  structure.AddEdge(1, 0);  // q1+q2
  structure.AddEdge(2, 3);
  structure.AddEdge(3, 2);  // q3+q4
  structure.AddEdge(4, 5);
  structure.AddEdge(5, 4);  // q5+q6
  structure.AddEdge(2, 0);  // q3+q4 needs q1+q2
  structure.AddEdge(4, 0);  // q5+q6 needs q1+q2
  QuerySet set;
  MakeStructuredWorkload(structure, "Users", &set);
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 4u);
  EXPECT_TRUE(result->Contains(0));
  EXPECT_TRUE(result->Contains(1));
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());

  std::vector<size_t> sizes;
  for (const auto& s : coordinator.successful_sets()) {
    sizes.push_back(s.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 4, 4}));
}

TEST_F(SccAlgorithmTest, ListWorkloadCoordinatesWholeChain) {
  QuerySet set;
  MakeListWorkload(10, "Users", &set);
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 10u);
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
  // Worst case of §6.1: one database query per suffix.
  EXPECT_EQ(coordinator.stats().db_queries, 10u);
  EXPECT_EQ(coordinator.stats().num_sccs, 10u);
  EXPECT_EQ(coordinator.successful_sets().size(), 10u);
}

TEST_F(SccAlgorithmTest, PreCleaningRemovesHopelessQueries) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, x) }    R(A, x) :- Users(x, 'user1').\n"
      "b: { R(Cc, y) }   R(B, y) :- Users(y, 'user2').\n"
      "c: { Missing(z) } R(Cc, z) :- Users(z, 'user3').\n"
      "d: { }            R(Dd, w) :- Users(w, 'user4').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  // c's postcondition matches no head, so c, b, a all die in
  // pre-cleaning; d survives alone.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{(*ids)[3]}));
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(SccAlgorithmTest, NotFoundWhenEverythingPrunes) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { Missing(x) } R(A, x) :- Users(x, 'user1').", &set);
  ASSERT_TRUE(ids.ok());
  SccCoordinator coordinator(&db_);
  EXPECT_TRUE(coordinator.Solve(set).status().IsNotFound());
}

TEST_F(SccAlgorithmTest, NotFoundWhenBodyUnsatisfiable) {
  QuerySet set;
  auto ids = ParseQueries(
      "a: { } R(A, x) :- Users(x, 'ghost-user').", &set);
  ASSERT_TRUE(ids.ok());
  SccCoordinator coordinator(&db_);
  EXPECT_TRUE(coordinator.Solve(set).status().IsNotFound());
}

TEST_F(SccAlgorithmTest, UnsafeSetRejectedByDefault) {
  QuerySet set;
  auto ids = ParseQueries(
      "asker: { R(x) } H(x) :- Users(u, 'user0').\n"
      "a:     { }      R(y) :- Users(y, 'user1').\n"
      "b:     { }      R(z) :- Users(z, 'user2').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SccCoordinator coordinator(&db_);
  EXPECT_TRUE(coordinator.Solve(set).status().IsFailedPrecondition());
}

TEST_F(SccAlgorithmTest, EmptySetIsNotFound) {
  QuerySet set;
  SccCoordinator coordinator(&db_);
  EXPECT_TRUE(coordinator.Solve(set).status().IsNotFound());
}

TEST_F(SccAlgorithmTest, UnificationFailureMarksComponentFailed) {
  // b's postcondition is positionwise unifiable with a's head but truly
  // non-unifiable (repeated variable vs distinct constants): the pair's
  // component fails, the standalone query d still coordinates.
  QuerySet set;
  auto ids = ParseQueries(
      "a: { R(B, w) }    R(A, x, x) :- Users(u, 'user0').\n"
      "b: { R(A, 1, 2) } R(B, y)    :- Users(v, 'user1').\n"
      "d: { }            R(Dd, t)   :- Users(t, 'user4').",
      &set);
  ASSERT_TRUE(ids.ok()) << ids.status();
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{(*ids)[2]}));
}

TEST_F(SccAlgorithmTest, SharedSuccessorCountedOnce) {
  // Diamond: q1 and q2 both need q0; q3 needs q1 and q2.  R(q3) must
  // contain four queries, not five (q0 deduplicated).
  Digraph structure(4);
  structure.AddEdge(1, 0);
  structure.AddEdge(2, 0);
  structure.AddEdge(3, 1);
  structure.AddEdge(3, 2);
  QuerySet set;
  MakeStructuredWorkload(structure, "Users", &set);
  SccCoordinator coordinator(&db_);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{0, 1, 2, 3}));
  EXPECT_TRUE(ValidateSolution(db_, set, *result).ok());
}

TEST_F(SccAlgorithmTest, StatsReportGraphShape) {
  QuerySet set;
  MakeListWorkload(7, "Users", &set);
  SccCoordinator coordinator(&db_);
  ASSERT_TRUE(coordinator.Solve(set).ok());
  EXPECT_EQ(coordinator.stats().graph_nodes, 7u);
  EXPECT_EQ(coordinator.stats().graph_edges, 6u);
  EXPECT_EQ(coordinator.stats().num_sccs, 7u);
  EXPECT_GT(coordinator.stats().unifications, 0u);
  EXPECT_GE(coordinator.stats().total_seconds, 0.0);
}

TEST_F(SccAlgorithmTest, VipScorePrefersSmallerSetWithVip) {
  // Components graph: q3+q4 -> q1+q2 <- q5+q6 (as in §4's example).
  // Max-size picks a 4-set; with q1 as... every set contains q1.  Make
  // q5 the VIP: only {q1,q2,q5,q6} contains it.
  Digraph structure(6);
  structure.AddEdge(0, 1);
  structure.AddEdge(1, 0);
  structure.AddEdge(2, 3);
  structure.AddEdge(3, 2);
  structure.AddEdge(4, 5);
  structure.AddEdge(5, 4);
  structure.AddEdge(2, 0);
  structure.AddEdge(4, 0);
  QuerySet set;
  MakeStructuredWorkload(structure, "Users", &set);

  // Default criterion: one of the two 4-sets.
  SccCoordinator plain(&db_);
  auto by_size = plain.Solve(set);
  ASSERT_TRUE(by_size.ok());
  EXPECT_EQ(by_size->queries.size(), 4u);

  // VIP criterion: must return the set containing query 4.
  SccOptions options;
  options.score = VipScore(4);
  SccCoordinator vip(&db_, options);
  auto with_vip = vip.Solve(set);
  ASSERT_TRUE(with_vip.ok()) << with_vip.status();
  EXPECT_EQ(with_vip->queries, (std::vector<QueryId>{0, 1, 4, 5}));
}

TEST_F(SccAlgorithmTest, WeightedScoreSelectsGoldPassengers) {
  // Two disjoint 2-cycles; queries 2 and 3 carry the gold status.
  Digraph structure(4);
  structure.AddEdge(0, 1);
  structure.AddEdge(1, 0);
  structure.AddEdge(2, 3);
  structure.AddEdge(3, 2);
  QuerySet set;
  MakeStructuredWorkload(structure, "Users", &set);

  SccOptions options;
  options.score = WeightedScore({0.0, 0.0, 5.0, 5.0});
  SccCoordinator coordinator(&db_, options);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{2, 3}));
  // Both components succeeded; selection, not search, differed.
  EXPECT_EQ(coordinator.successful_sets().size(), 2u);
}

TEST_F(SccAlgorithmTest, PruningCanBeDisabled) {
  // With pruning off, the hopeless component simply fails during the
  // sweep instead of being pre-cleaned; the result is the same.
  QuerySet set;
  auto ids = ParseQueries(
      "a: { Missing(x) } R(A, x) :- Users(x, 'user1').\n"
      "d: { }            R(Dd, w) :- Users(w, 'user4').",
      &set);
  ASSERT_TRUE(ids.ok());
  SccOptions options;
  options.prune_postconditions = false;
  SccCoordinator coordinator(&db_, options);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries, (std::vector<QueryId>{(*ids)[1]}));
}

}  // namespace
}  // namespace entangled
