#include "workload/entangled_workloads.h"

#include <gtest/gtest.h>

#include "core/coordination_graph.h"
#include "core/properties.h"
#include "db/evaluator.h"
#include "graph/generators.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 128).ok());
  }
  Database db_;
};

TEST_F(WorkloadTest, ListWorkloadShape) {
  QuerySet set;
  std::vector<QueryId> ids = MakeListWorkload(5, "Users", &set);
  ASSERT_EQ(ids.size(), 5u);
  // Query i coordinates with i+1; the last with nobody.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(set.query(ids[static_cast<size_t>(i)]).postconditions.size(),
              1u);
  }
  EXPECT_TRUE(set.query(ids[4]).postconditions.empty());
}

TEST_F(WorkloadTest, ListWorkloadGraphIsChain) {
  QuerySet set;
  MakeListWorkload(6, "Users", &set);
  Digraph graph = BuildCoordinationGraph(set);
  EXPECT_EQ(graph.num_edges(), 5);
  for (NodeId i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(graph.HasEdge(i, i + 1));
  }
}

TEST_F(WorkloadTest, BodiesAreSatisfiable) {
  QuerySet set;
  MakeListWorkload(8, "Users", &set);
  Evaluator evaluator(&db_);
  for (const EntangledQuery& q : set.queries()) {
    EXPECT_TRUE(evaluator.Satisfiable(q.body)) << q.name;
  }
}

TEST_F(WorkloadTest, WorkloadIsSafe) {
  QuerySet set;
  Rng rng(3);
  MakeScaleFreeWorkload(30, 2, "Users", &rng, &set);
  EXPECT_TRUE(IsSafeSet(set));
}

TEST_F(WorkloadTest, ScaleFreeGraphReproducedExactly) {
  Rng rng_graph(11);
  Digraph expected = MakeScaleFree(20, 2, &rng_graph);
  Rng rng_workload(11);
  QuerySet set;
  MakeScaleFreeWorkload(20, 2, "Users", &rng_workload, &set);
  Digraph actual = BuildCoordinationGraph(set);
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes());
  for (NodeId u = 0; u < expected.num_nodes(); ++u) {
    for (NodeId v : expected.Successors(u)) {
      EXPECT_TRUE(actual.HasEdge(u, v)) << u << "->" << v;
    }
    EXPECT_EQ(actual.OutDegree(u), expected.OutDegree(u));
  }
}

TEST_F(WorkloadTest, CycleWorkloadIsUnique) {
  QuerySet set;
  MakeCycleWorkload(5, "Users", &set);
  EXPECT_TRUE(IsSafeSet(set));
  EXPECT_TRUE(IsUniqueSet(set));
}

TEST_F(WorkloadTest, StructuredWorkloadHonoursArbitraryGraphs) {
  Digraph structure(3);
  structure.AddEdge(0, 2);
  structure.AddEdge(2, 0);
  QuerySet set;
  MakeStructuredWorkload(structure, "Users", &set);
  Digraph graph = BuildCoordinationGraph(set);
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_EQ(graph.num_edges(), 2);
}

}  // namespace
}  // namespace entangled
