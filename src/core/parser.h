#ifndef ENTANGLED_CORE_PARSER_H_
#define ENTANGLED_CORE_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/query.h"

namespace entangled {

/// \brief Parses entangled queries written in the paper's concrete
/// syntax:
///
///     q1: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
///     q2: { } R(Chris, y) :- Flights(y, Zurich).
///
/// Lexical rules:
///  * `name:` before the opening brace names the query (optional).
///  * Identifiers starting with a lowercase letter are variables, scoped
///    to their query (queries are standardized apart automatically);
///    a bare `_` is a fresh anonymous variable at each occurrence.
///  * Identifiers starting with an uppercase letter are string
///    constants when they appear as terms (Chris, Zurich); quoted
///    strings ('LAX' or "LAX") and integers are constants too.
///  * The identifier before `(` is a relation name (any case).
///  * Postconditions `{...}` and body may be empty; the head may not.
///  * `%` and `//` start comments running to end of line.
///
/// Parsed queries are appended to `*set`; the returned ids are in input
/// order.  On error, nothing useful remains in `*set` — parse into a
/// scratch set when input is untrusted.
Result<std::vector<QueryId>> ParseQueries(const std::string& text,
                                          QuerySet* set);

/// \brief Parses exactly one query.
Result<QueryId> ParseQuery(const std::string& text, QuerySet* set);

}  // namespace entangled

#endif  // ENTANGLED_CORE_PARSER_H_
