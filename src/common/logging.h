#ifndef ENTANGLED_COMMON_LOGGING_H_
#define ENTANGLED_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace entangled {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used by the CHECK macros so call sites can stream context:
/// ENTANGLED_CHECK(x > 0) << "x was " << x;
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line
            << "] Check failed: " << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed expression into void so the CHECK ternary's arms
/// have a common type.  operator& binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace entangled

/// CHECK-style invariant assertions (enabled in all build types):
/// programmer-error guards, not recoverable-error reporting.
#define ENTANGLED_CHECK(condition)                             \
  (condition) ? static_cast<void>(0)                           \
              : ::entangled::internal::Voidify() &             \
                    ::entangled::internal::FatalLogMessage(    \
                        __FILE__, __LINE__, #condition)        \
                        .stream()

#define ENTANGLED_CHECK_EQ(a, b) \
  ENTANGLED_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ENTANGLED_CHECK_NE(a, b) \
  ENTANGLED_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ENTANGLED_CHECK_LT(a, b) \
  ENTANGLED_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ENTANGLED_CHECK_LE(a, b) \
  ENTANGLED_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ENTANGLED_CHECK_GT(a, b) \
  ENTANGLED_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ENTANGLED_CHECK_GE(a, b) \
  ENTANGLED_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // ENTANGLED_COMMON_LOGGING_H_
