#ifndef ENTANGLED_COMMON_TIMER_H_
#define ENTANGLED_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace entangled {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness
/// and by per-algorithm statistics.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_TIMER_H_
