#include <gtest/gtest.h>

#include "algo/brute_force.h"
#include "algo/generic_solver.h"
#include "common/rng.h"
#include "core/validator.h"
#include "reductions/dpll.h"
#include "reductions/random_sat.h"
#include "reductions/theorem1.h"
#include "reductions/theorem2.h"

namespace entangled {
namespace {

/// Property (Theorem 1 / Appendix A): a random 3SAT formula is
/// satisfiable iff its Entangled(Qall) encoding over D = {0,1} has a
/// coordinating set; when it does, the decoded assignment satisfies the
/// formula.
class Theorem1RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1RoundTrip, SatIffCoordinates) {
  Rng rng(GetParam() * 104729);
  // Around the phase transition for spicy instances.
  const int num_vars = 3 + static_cast<int>(rng.NextBounded(2));  // 3..4
  const int num_clauses =
      2 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(
              3 * num_vars)));
  CnfFormula formula = Random3Sat(num_vars, num_clauses, &rng);

  DpllSolver dpll;
  bool satisfiable = dpll.Solve(formula).has_value();

  QuerySet set;
  Database db;
  Theorem1Encoding encoding = EncodeTheorem1(formula, &set, &db);
  GenericSolver solver(&db);
  auto result = solver.FindContaining(set, encoding.clause_query);

  EXPECT_EQ(result.ok(), satisfiable)
      << formula.ToString() << "\n" << result.status();
  if (result.ok()) {
    EXPECT_TRUE(ValidateSolution(db, set, *result).ok())
        << formula.ToString();
    TruthAssignment decoded = encoding.DecodeAssignment(formula, *result);
    EXPECT_TRUE(Satisfies(formula, decoded)) << formula.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, Theorem1RoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

/// Property (Theorem 2 / Figure 9): for a random small formula with
/// distinct-variable clauses, the maximum coordinating set of the
/// *safe* encoding has size k + m iff the formula is satisfiable.
class Theorem2RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem2RoundTrip, MaxSizeCertifiesSatisfiability) {
  Rng rng(GetParam() * 7907);
  const int num_vars = 3;
  const int num_clauses = 2 + static_cast<int>(rng.NextBounded(2));
  CnfFormula formula = Random3Sat(num_vars, num_clauses, &rng);

  DpllSolver dpll;
  bool satisfiable = dpll.Solve(formula).has_value();

  QuerySet set;
  Database db;
  Theorem2Encoding encoding = EncodeTheorem2(formula, &set, &db);
  BruteForceSolver brute(&db);
  auto maximum = brute.FindMaximum(set);
  ASSERT_TRUE(maximum.has_value());  // the var queries always coordinate
  EXPECT_TRUE(ValidateSolution(db, set, *maximum).ok());

  const size_t target = encoding.SatisfiableSize(formula);
  if (satisfiable) {
    EXPECT_EQ(maximum->queries.size(), target) << formula.ToString();
    TruthAssignment decoded = encoding.DecodeAssignment(formula, *maximum);
    EXPECT_TRUE(Satisfies(formula, decoded)) << formula.ToString();
  } else {
    EXPECT_LT(maximum->queries.size(), target) << formula.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, Theorem2RoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace entangled
