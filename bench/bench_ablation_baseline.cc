// Ablation A1 — is the SCC algorithm's generality free?
//
// On safe AND unique inputs (a directed coordination cycle), both the
// Gupta et al. baseline (§2.3) and the SCC Coordination Algorithm (§4)
// apply.  Both issue exactly one database query; the SCC algorithm
// additionally pays for Tarjan + condensation.  This bench quantifies
// that overhead — the paper's claim is that graph processing is
// negligible, so the two curves should sit on top of each other.

#include <benchmark/benchmark.h>

#include "algo/gupta_baseline.h"
#include "algo/scc_coordination.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/entangled_workloads.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(
        InstallSocialTable(database, "Users", kSlashdotTableSize).ok());
    return database;
  }();
  return *db;
}

void PrintPaperSeries() {
  benchutil::PrintSeriesHeader(
      "Ablation A1: Gupta baseline vs SCC algorithm on safe+unique "
      "cycles",
      {"num_queries", "gupta_ms", "scc_ms", "gupta_db_queries",
       "scc_db_queries"});
  for (int n = 10; n <= 100; n += 10) {
    QuerySet set;
    MakeCycleWorkload(n, "Users", &set);
    uint64_t gupta_db = 0;
    uint64_t scc_db = 0;
    double gupta_ms = benchutil::MeanMillis(5, [&] {
      GuptaBaseline baseline(&SocialDb());
      auto result = baseline.Solve(set);
      ENTANGLED_CHECK(result.ok()) << result.status();
      gupta_db = baseline.stats().db_queries;
    });
    double scc_ms = benchutil::MeanMillis(5, [&] {
      SccCoordinator coordinator(&SocialDb());
      auto result = coordinator.Solve(set);
      ENTANGLED_CHECK(result.ok()) << result.status();
      scc_db = coordinator.stats().db_queries;
    });
    benchutil::PrintRow({static_cast<double>(n), gupta_ms, scc_ms,
                         static_cast<double>(gupta_db),
                         static_cast<double>(scc_db)});
  }
  benchutil::PrintNote(
      "expected: both issue 1 DB query; SCC overhead small and flat");
}

void BM_GuptaCycle(benchmark::State& state) {
  QuerySet set;
  MakeCycleWorkload(static_cast<int>(state.range(0)), "Users", &set);
  for (auto _ : state) {
    GuptaBaseline baseline(&SocialDb());
    benchmark::DoNotOptimize(baseline.Solve(set).ok());
  }
}
BENCHMARK(BM_GuptaCycle)->Arg(20)->Arg(100);

void BM_SccCycle(benchmark::State& state) {
  QuerySet set;
  MakeCycleWorkload(static_cast<int>(state.range(0)), "Users", &set);
  for (auto _ : state) {
    SccCoordinator coordinator(&SocialDb());
    benchmark::DoNotOptimize(coordinator.Solve(set).ok());
  }
}
BENCHMARK(BM_SccCycle)->Arg(20)->Arg(100);

}  // namespace
}  // namespace entangled

int main(int argc, char** argv) {
  entangled::PrintPaperSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
