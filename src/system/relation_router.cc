#include "system/relation_router.h"

#include <algorithm>

#include "common/logging.h"

namespace entangled {

RelationId RelationRouter::Intern(const std::string& name) {
  auto [it, inserted] =
      ids_.emplace(name, static_cast<RelationId>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    parent_.push_back(it->second);
    size_.push_back(1);
    weight_.push_back(0);
    members_.push_back({it->second});
  }
  return it->second;
}

std::vector<RelationId> RelationRouter::Footprint(const QuerySet& set,
                                                 QueryId id) {
  std::vector<RelationId> footprint;
  const EntangledQuery& query = set.query(id);
  for (const auto* atoms : {&query.postconditions, &query.head}) {
    for (const Atom& atom : *atoms) {
      footprint.push_back(Intern(atom.relation));
    }
  }
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  return footprint;
}

RelationId RelationRouter::Find(RelationId r) const {
  ENTANGLED_CHECK(r >= 0 && static_cast<size_t>(r) < parent_.size())
      << "unknown relation " << r;
  RelationId root = r;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(r)] != root) {
    RelationId next = parent_[static_cast<size_t>(r)];
    parent_[static_cast<size_t>(r)] = root;
    r = next;
  }
  return root;
}

void RelationRouter::Union(RelationId a, RelationId b) {
  RelationId ra = Find(a);
  RelationId rb = Find(b);
  if (ra == rb) return;
  // Weight-first union (relation count as the tie-break): the surviving
  // root is the one bound to the heavy shard, so a merge rebinds the
  // light groups under it instead of the other way around.
  if (weight_[static_cast<size_t>(ra)] < weight_[static_cast<size_t>(rb)] ||
      (weight_[static_cast<size_t>(ra)] == weight_[static_cast<size_t>(rb)] &&
       size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)])) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
  weight_[static_cast<size_t>(ra)] += weight_[static_cast<size_t>(rb)];
  weight_[static_cast<size_t>(rb)] = 0;
  auto& into = members_[static_cast<size_t>(ra)];
  auto& from = members_[static_cast<size_t>(rb)];
  into.insert(into.end(), from.begin(), from.end());
  from.clear();
  from.shrink_to_fit();
}

RelationId RelationRouter::Unite(const std::vector<RelationId>& footprint,
                                 std::vector<RelationId>* prior_roots) {
  ENTANGLED_CHECK(!footprint.empty());
  if (prior_roots != nullptr) {
    prior_roots->clear();
    for (RelationId r : footprint) prior_roots->push_back(Find(r));
    std::sort(prior_roots->begin(), prior_roots->end());
    prior_roots->erase(std::unique(prior_roots->begin(), prior_roots->end()),
                       prior_roots->end());
  }
  for (size_t i = 1; i < footprint.size(); ++i) {
    Union(footprint[0], footprint[i]);
  }
  return Find(footprint[0]);
}

const std::vector<RelationId>& RelationRouter::GroupRelations(
    RelationId root) const {
  ENTANGLED_CHECK(Find(root) == root)
      << "relation " << root << " is not a group root";
  return members_[static_cast<size_t>(root)];
}

void RelationRouter::DissolveGroup(RelationId root) {
  ENTANGLED_CHECK(Find(root) == root)
      << "relation " << root << " is not a group root";
  std::vector<RelationId> relations =
      std::move(members_[static_cast<size_t>(root)]);
  for (RelationId r : relations) {
    parent_[static_cast<size_t>(r)] = r;
    size_[static_cast<size_t>(r)] = 1;
    weight_[static_cast<size_t>(r)] = 0;
    members_[static_cast<size_t>(r)] = {r};
  }
}

void RelationRouter::SetWeight(RelationId root, uint64_t weight) {
  ENTANGLED_CHECK(Find(root) == root)
      << "relation " << root << " is not a group root";
  weight_[static_cast<size_t>(root)] = weight;
}

const std::string& RelationRouter::relation_name(RelationId r) const {
  ENTANGLED_CHECK(r >= 0 && static_cast<size_t>(r) < names_.size())
      << "unknown relation " << r;
  return names_[static_cast<size_t>(r)];
}

size_t RelationRouter::num_groups() const {
  size_t groups = 0;
  for (size_t r = 0; r < parent_.size(); ++r) {
    if (parent_[r] == static_cast<RelationId>(r)) ++groups;
  }
  return groups;
}

}  // namespace entangled
