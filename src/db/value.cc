#include "db/value.h"

#include "common/hash.h"
#include "common/logging.h"

namespace entangled {

int64_t Value::AsInt() const {
  ENTANGLED_CHECK(is_int()) << "Value is not an int: " << ToString(true);
  return int_;
}

const std::string& Value::AsString() const {
  ENTANGLED_CHECK(is_string()) << "Value is not a string: " << ToString(true);
  return GlobalValueInterner().ToString(sym_);
}

Symbol Value::AsSymbol() const {
  ENTANGLED_CHECK(is_string()) << "Value is not a string: " << ToString(true);
  return sym_;
}

std::string Value::ToString(bool quote) const {
  if (is_int()) return std::to_string(int_);
  const std::string& s = GlobalValueInterner().ToString(sym_);
  if (!quote) return s;
  return "'" + s + "'";
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  if (a.kind_ == Value::Kind::kInt) return a.int_ < b.int_;
  if (a.sym_ == b.sym_) return false;
  const StringInterner& interner = GlobalValueInterner();
  return interner.ToString(a.sym_) < interner.ToString(b.sym_);
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind_);
  if (is_int()) {
    HashCombine(&seed, int_);
  } else {
    HashCombine(&seed, sym_);
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace entangled
