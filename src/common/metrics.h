#ifndef ENTANGLED_COMMON_METRICS_H_
#define ENTANGLED_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace entangled {

/// \brief Fixed-bucket latency histogram: 32 power-of-two buckets over
/// nanoseconds (bucket i counts samples with bit_width(ns) == i, i.e.
/// ns in [2^(i-1), 2^i)), so Record() is a shift and an increment and
/// two histograms merge field-wise.  Plain (non-atomic) counters: every
/// producer in this codebase records on the thread that owns the stats
/// it feeds (the coordinating thread of an engine, or the session
/// manager's single API thread).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  void Record(int64_t nanos) {
    if (nanos < 0) nanos = 0;
    ++buckets_[BucketIndex(static_cast<uint64_t>(nanos))];
    ++count_;
    total_ns_ += static_cast<uint64_t>(nanos);
    if (static_cast<uint64_t>(nanos) > max_ns_) {
      max_ns_ = static_cast<uint64_t>(nanos);
    }
  }

  uint64_t count() const { return count_; }
  uint64_t total_ns() const { return total_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  /// Upper edge (exclusive) of bucket `i` in nanoseconds; the last
  /// bucket is unbounded and reports the largest representable edge.
  static uint64_t BucketUpperBoundNs(size_t i) {
    if (i >= kNumBuckets - 1) return ~uint64_t{0};
    return uint64_t{1} << i;
  }

  /// Upper bound on the p-quantile (p in [0, 1]): the upper edge of the
  /// bucket the quantile sample falls in.  0 when empty.
  uint64_t ApproxQuantileNs(double p) const {
    if (count_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    // Rank of the quantile sample, 1-based, matching "at least p of the
    // samples are <= this bucket's upper edge".
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) return BucketUpperBoundNs(i);
    }
    return max_ns_;
  }

  LatencyHistogram& operator+=(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    total_ns_ += other.total_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
    return *this;
  }

 private:
  static size_t BucketIndex(uint64_t nanos) {
    size_t width = 0;
    while (nanos != 0) {
      ++width;
      nanos >>= 1;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ns_ = 0;
  uint64_t max_ns_ = 0;
};

/// \brief Point-in-time load view of one shard of a sharded service (or
/// of the single engine, which reports itself as slot 0).
struct ShardGauge {
  int64_t slot = 0;          ///< shard slot id
  uint64_t pending = 0;      ///< pending queries routed to this shard
  uint64_t evaluations = 0;  ///< component evaluations this shard ran
};

/// \brief Point-in-time load view of a CoordinationService, cheap
/// enough to poll per snapshot (the per-shard vector is the only
/// allocation).  `pending` counts every accepted-but-unretired
/// submission, including intake-queued ones the owning thread has not
/// drained yet — the admission-control view of load.
struct ServiceGauges {
  uint64_t pending = 0;
  uint64_t intake_depth = 0;  ///< validated-but-undrained submissions
  uint64_t live_shards = 0;
  uint64_t group_merges = 0;      ///< footprints that united >1 shard
  uint64_t queries_migrated = 0;  ///< pending queries merges moved
  /// Pending queries merges left in place (the survivors' sides under
  /// the small-into-large policy); moved + retained sums the work a
  /// rebuild-everything policy would have done.
  uint64_t queries_retained = 0;
  uint64_t merge_events = 0;        ///< shard-merge operations performed
  uint64_t merge_migrated_max = 0;  ///< most queries any one merge moved
  std::vector<ShardGauge> shards;
};

/// \brief One self-contained observability snapshot: flat counters,
/// named latency histograms, and the service gauges.  Deliberately
/// generic (string-keyed sections, no engine or session types) so the
/// common layer stays at the bottom of the include graph and the
/// snapshot never leaks internals of the layers that fill it in.
///
/// ToJson() emits a stable document: section order and key order are
/// the insertion order of the builder, which is fixed in code.  Two
/// snapshots of identical runs differ only in the timing fields —
/// every key ending in `_ns` plus the per-histogram `buckets` array;
/// all `count` fields and counters are deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, LatencyHistogram>> latency;
  ServiceGauges gauges;

  std::string ToJson() const;
};

/// JSON string escaping for the snapshot serializer (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& text);

}  // namespace entangled

#endif  // ENTANGLED_COMMON_METRICS_H_
