// Delta-aware evaluation: events/sec through one large live component
// absorbing single-query arrivals, delta_eval on vs off.
//
// Scenario: a hub query posts at kMembers-1 sink queries (distinct
// relations, so each sink is its own SCC), and every sink's body is an
// unsatisfiable full scan of the kSocialRows-row Users table.  The
// component is stuck: each evaluation grounds every sink SCC (one
// database FindOne each, all failing) and then dooms the hub off its
// failed successors.  Arrivals post into the first sink — each one
// joins the component and, at evaluate_every=1, re-solves it.
//
// With delta_eval off that is O(members) database probes per arrival.
// With delta_eval on, the per-component EvalMemo replays every sink's
// stamped verdict, so an arrival costs zero probes — only the graph
// sweep itself.  The >= 5x events/sec bar is algorithmic
// (single-threaded, deterministic), so it is armed unconditionally;
// the measured gap is far larger and grows with the component.
//
// speedup = events/sec(delta on) / events/sec(delta off).

#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "system/engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

constexpr size_t kSocialRows = 16384;
constexpr size_t kMembers = 256;  ///< component size when the clock starts
constexpr size_t kSinks = kMembers - 1;  ///< failing sink SCCs per sweep
constexpr size_t kArrivals = 32;  ///< timed single-query arrivals

const Database& SocialDb() {
  static Database* db = [] {
    auto* database = new Database();
    ENTANGLED_CHECK(InstallSocialTable(database, "Users", kSocialRows).ok());
    return database;
  }();
  return *db;
}

/// Sink `i`: no postconditions (always alive), head in its own
/// relation, and a multi-atom body that never grounds ('nouser' is not
/// a handle).  The extra atoms are what an evaluation pays for per
/// sweep step — substitution application, combined-body construction,
/// dedup — and what the memo's stored verdict replays for free.
std::string Sink(size_t i) {
  const std::string rel = "S" + std::to_string(i);
  return "s" + std::to_string(i) + ": { } " + rel +
         "(A, y) :- Users(y, 'nouser'), Users(y2, 'user1'), "
         "Users(y3, 'user2'), Users(y4, 'user3').";
}

/// The hub: one postcondition per sink, so all sinks and the hub are
/// one connected component.
std::string Hub() {
  std::string posts;
  for (size_t i = 0; i < kSinks; ++i) {
    if (i > 0) posts += ", ";
    posts += "S" + std::to_string(i) + "(A, x)";
  }
  return "h: { " + posts + " } H(T, x) :- Users(x, 'nouser').";
}

/// Arrival `i`: posts into sink 0, joining the component as one more
/// doomed-by-successor SCC.
std::string Arrival(size_t i) {
  return "c" + std::to_string(i) + ": { S0(A, w) } C" + std::to_string(i) +
         "(T, w) :- Users(w, 'nouser').";
}

struct DeltaOutcome {
  double seconds = 0;
  EngineStats stats;
  double events_per_sec() const { return kArrivals / seconds; }
};

DeltaOutcome RunStream(bool delta_eval) {
  EngineOptions options;
  options.incremental = true;
  options.delta_eval = delta_eval;
  options.evaluate_every = 0;
  CoordinationEngine engine(&SocialDb(), options);

  // Untimed setup: grow the component to kMembers and evaluate it
  // once, priming the memo with every sink's stamped verdict.
  for (size_t i = 0; i < kSinks; ++i) {
    ENTANGLED_CHECK(engine.Submit(Sink(i)).ok());
  }
  ENTANGLED_CHECK(engine.Submit(Hub()).ok());
  ENTANGLED_CHECK_EQ(engine.Flush(), size_t{0});
  ENTANGLED_CHECK_EQ(engine.num_pending(), kMembers);

  // Timed: one evaluation per absorbed arrival.
  engine.set_evaluate_every(1);
  DeltaOutcome outcome;
  WallTimer timer;
  for (size_t i = 0; i < kArrivals; ++i) {
    ENTANGLED_CHECK(engine.Submit(Arrival(i)).ok());
  }
  outcome.seconds = timer.ElapsedSeconds();
  ENTANGLED_CHECK_EQ(engine.num_pending(), kMembers + kArrivals);
  outcome.stats = engine.stats();
  return outcome;
}

void DeltaEvalSeries() {
  benchutil::PrintSeriesHeader(
      "Delta evaluation: events/sec absorbing single arrivals into a " +
          std::to_string(kMembers) + "-member component",
      {"delta_eval", "events_per_sec", "db_queries", "memo_hits",
       "speedup_vs_off"});

  DeltaOutcome off = RunStream(false);
  DeltaOutcome on = RunStream(true);
  const double speedup = on.events_per_sec() / off.events_per_sec();
  for (const auto* o : {&off, &on}) {
    const bool delta = o == &on;
    benchutil::PrintRow({delta ? 1.0 : 0.0, o->events_per_sec(),
                         static_cast<double>(o->stats.db_queries),
                         static_cast<double>(o->stats.eval_cache_hits),
                         delta ? speedup : 1.0});
    benchutil::PrintJsonRecord(
        "delta_eval",
        {{"delta_eval", delta ? 1.0 : 0.0},
         {"members", static_cast<double>(kMembers)},
         {"arrivals", static_cast<double>(kArrivals)},
         {"events_per_sec", o->events_per_sec()},
         {"db_queries", static_cast<double>(o->stats.db_queries)},
         {"eval_cache_hits", static_cast<double>(o->stats.eval_cache_hits)},
         {"evaluations_avoided",
          static_cast<double>(o->stats.evaluations_avoided)},
         {"speedup_vs_off", delta ? speedup : 1.0}});
  }

  // Both settings must do the same *logical* work (same evaluations,
  // nothing delivered), and the memo must have actually engaged.
  ENTANGLED_CHECK_EQ(on.stats.evaluations, off.stats.evaluations);
  ENTANGLED_CHECK_EQ(on.stats.coordinating_sets, size_t{0});
  ENTANGLED_CHECK_EQ(off.stats.coordinating_sets, size_t{0});
  ENTANGLED_CHECK_GT(on.stats.eval_cache_hits, uint64_t{0});
  ENTANGLED_CHECK_LT(on.stats.db_queries, off.stats.db_queries);
  ENTANGLED_CHECK_GE(speedup, 5.0)
      << "memoized sweep steps must make single-arrival absorption at "
         "least 5x faster than re-solving the whole component";
  benchutil::PrintNote(
      "delta_eval=on issued " + std::to_string(on.stats.db_queries) +
      " database probes vs " + std::to_string(off.stats.db_queries) +
      " with the memo disabled (identical outcomes either way)");
}

}  // namespace
}  // namespace entangled

int main() {
  entangled::DeltaEvalSeries();
  return 0;
}
