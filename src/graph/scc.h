#ifndef ENTANGLED_GRAPH_SCC_H_
#define ENTANGLED_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace entangled {

/// \brief Partition of a digraph into strongly connected components.
struct SccResult {
  /// component_of[v] is the SCC id of node v.
  std::vector<NodeId> component_of;
  /// members[c] lists the nodes of SCC c, in increasing node id.
  std::vector<std::vector<NodeId>> members;

  NodeId num_components() const {
    return static_cast<NodeId>(members.size());
  }
};

/// \brief Computes strongly connected components with an iterative
/// Tarjan traversal (no recursion, safe for the 1000-node Figure-6
/// workloads and far beyond).
///
/// Component ids are assigned in completion (pop) order, which for
/// Tarjan is a *reverse topological* order of the condensation: every
/// edge of the condensation goes from a higher component id to a lower
/// one.  The SCC Coordination Algorithm's reverse-topological sweep is
/// therefore simply component 0, 1, 2, ...
SccResult TarjanScc(const Digraph& graph);

/// \brief Reference SCC implementation via pairwise reachability
/// (O(V·(V+E))); exists so property tests can cross-check TarjanScc.
SccResult NaiveScc(const Digraph& graph);

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_SCC_H_
