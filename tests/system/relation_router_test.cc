// Router edge cases: the union-find over answer relations
// (system/relation_router.h) and the routing/merge/GC behaviour it
// drives in the sharded front door — k-way group merges in one
// submission, shard GC when a Cancel drains a shard, re-bridging a
// previously merged-then-drained group, and global-id stability across
// migration.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query.h"
#include "system/relation_router.h"
#include "system/sharded_engine.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

// ---------------------------------------------------------------------------
// RelationRouter unit tests
// ---------------------------------------------------------------------------

TEST(RelationRouterTest, InternIsIdempotent) {
  RelationRouter router;
  RelationId a = router.Intern("A");
  EXPECT_EQ(router.Intern("A"), a);
  RelationId b = router.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(router.num_relations(), 2u);
  EXPECT_EQ(router.relation_name(a), "A");
  EXPECT_EQ(router.num_groups(), 2u);
}

TEST(RelationRouterTest, FootprintCoversPostsAndHeadsOnly) {
  QuerySet set;
  QueryBuilder builder(&set, "q");
  VarId x = builder.Var("x");
  builder.Post("A", {Term::Str("T"), Term::Var(x)});
  builder.Post("B", {Term::Str("T"), Term::Var(x)});
  builder.Head("C", {Term::Str("T"), Term::Var(x)});
  builder.Body("Users", {Term::Var(x), Term::Str("user1")});
  QueryId q = builder.Build();

  RelationRouter router;
  std::vector<RelationId> footprint = router.Footprint(set, q);
  ASSERT_EQ(footprint.size(), 3u);  // A, B, C — never the body's Users
  for (RelationId r : footprint) {
    EXPECT_NE(router.relation_name(r), "Users");
  }
}

TEST(RelationRouterTest, UniteReportsPriorRootsAndMerges) {
  RelationRouter router;
  RelationId a = router.Intern("A");
  RelationId b = router.Intern("B");
  RelationId c = router.Intern("C");
  // Three singleton groups; one footprint touching all three merges
  // them and reports all three prior roots.
  std::vector<RelationId> prior;
  RelationId root = router.Unite({a, b, c}, &prior);
  EXPECT_EQ(prior.size(), 3u);
  EXPECT_EQ(router.Find(a), root);
  EXPECT_EQ(router.Find(b), root);
  EXPECT_EQ(router.Find(c), root);
  EXPECT_EQ(router.num_groups(), 1u);
  EXPECT_EQ(router.GroupRelations(root).size(), 3u);

  // Uniting within the merged group is a no-op with one prior root.
  router.Unite({b, c}, &prior);
  EXPECT_EQ(prior.size(), 1u);
  EXPECT_EQ(prior.front(), root);
}

TEST(RelationRouterTest, DissolveGroupRestoresSingletons) {
  RelationRouter router;
  RelationId a = router.Intern("A");
  RelationId b = router.Intern("B");
  RelationId root = router.Unite({a, b});
  ASSERT_EQ(router.num_groups(), 1u);
  router.DissolveGroup(root);
  EXPECT_EQ(router.num_groups(), 2u);
  EXPECT_EQ(router.Find(a), a);
  EXPECT_EQ(router.Find(b), b);
  // Dissolved relations re-bridge like fresh ones.
  EXPECT_EQ(router.Find(a), router.Find(a));
  RelationId again = router.Unite({a, b});
  EXPECT_EQ(router.Find(b), again);
}

// ---------------------------------------------------------------------------
// Routing behaviour through the sharded front door
// ---------------------------------------------------------------------------

class ShardedRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallSocialTable(&db_, "Users", 16).ok());
    ShardedEngineOptions options;
    options.engine.evaluate_every = 0;  // drive evaluation explicitly
    engine_ = std::make_unique<ShardedCoordinationEngine>(&db_, options);
  }

  /// A pending query with head relation `rel` and tag `tag`, optionally
  /// posting on `post_rel`(`post_tag`, x).  Body always grounds.
  static std::string Query(const std::string& name, const std::string& rel,
                           const std::string& tag,
                           const std::string& posts = "") {
    return name + ": { " + posts + " } " + rel + "(" + tag +
           ", x) :- Users(x, 'user1').";
  }

  QueryId MustSubmit(const std::string& text) {
    auto id = engine_->Submit(text);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  Database db_;
  std::unique_ptr<ShardedCoordinationEngine> engine_;
};

TEST_F(ShardedRoutingTest, DisjointFootprintsGetSeparateShards) {
  QueryId a = MustSubmit(Query("qa", "A", "Ta"));
  QueryId b = MustSubmit(Query("qb", "B", "Tb"));
  QueryId c = MustSubmit(Query("qc", "C", "Tc"));
  EXPECT_EQ(engine_->num_live_shards(), 3u);
  EXPECT_FALSE(engine_->SameShard(a, b));
  EXPECT_FALSE(engine_->SameShard(b, c));
  EXPECT_EQ(engine_->sharded_stats().group_merges, 0u);
}

TEST_F(ShardedRoutingTest, KWayMergeInOneSubmission) {
  QueryId a = MustSubmit(Query("qa", "A", "Ta"));
  QueryId b = MustSubmit(Query("qb", "B", "Tb"));
  QueryId c = MustSubmit(Query("qc", "C", "Tc"));
  ASSERT_EQ(engine_->num_live_shards(), 3u);

  // One arrival whose posts span A, B, and C (and a new head relation
  // D): all four groups — three of them live shards — merge at once.
  QueryId k = MustSubmit(Query("qk", "D", "Td",
                               "A(Ta, x), B(Tb, x), C(Tc, x)"));
  EXPECT_EQ(engine_->num_live_shards(), 1u);
  EXPECT_TRUE(engine_->SameShard(a, k));
  EXPECT_TRUE(engine_->SameShard(b, k));
  EXPECT_TRUE(engine_->SameShard(c, k));
  const ShardedStats& stats = engine_->sharded_stats();
  EXPECT_EQ(stats.group_merges, 1u);
  // Small-into-large: one of the three equal-sized shards survives
  // (ties break toward the smallest slot) and the other two migrate.
  EXPECT_EQ(stats.shards_absorbed, 2u);
  EXPECT_EQ(stats.queries_migrated, 2u);
  EXPECT_EQ(stats.queries_retained, 1u);
  EXPECT_EQ(stats.merge_migrated_max, 2u);

  // The posts unify with the three heads, so the coordination component
  // spans all four queries — and ComponentOf reports global ids.
  EXPECT_EQ(engine_->ComponentOf(k), (std::vector<QueryId>{a, b, c, k}));
}

TEST_F(ShardedRoutingTest, CancelEmptyingAShardGcsIt) {
  QueryId a = MustSubmit(Query("qa", "A", "Ta"));
  MustSubmit(Query("qb", "B", "Tb"));
  ASSERT_EQ(engine_->num_live_shards(), 2u);

  EXPECT_TRUE(engine_->Cancel(a));
  EXPECT_EQ(engine_->num_live_shards(), 1u);
  EXPECT_EQ(engine_->sharded_stats().shards_gced, 1u);
  EXPECT_FALSE(engine_->IsPending(a));
  EXPECT_EQ(engine_->num_pending(), 1u);
  // A's group dissolved with the shard: the next A query starts a
  // fresh shard instead of resurrecting routing state.
  QueryId a2 = MustSubmit(Query("qa2", "A", "Ta2"));
  EXPECT_EQ(engine_->num_live_shards(), 2u);
  EXPECT_TRUE(engine_->IsPending(a2));
}

TEST_F(ShardedRoutingTest, RebridgingAMergedThenDrainedGroup) {
  QueryId a = MustSubmit(Query("qa", "A", "Ta"));
  QueryId b = MustSubmit(Query("qb", "B", "Tb"));
  QueryId bridge = MustSubmit(Query("qbr", "C", "Tc", "A(Ta, x), B(Tb, x)"));
  ASSERT_EQ(engine_->num_live_shards(), 1u);
  ASSERT_EQ(engine_->sharded_stats().group_merges, 1u);

  // Drain the merged shard entirely; its {A, B, C} relation group
  // dissolves back into singletons.
  EXPECT_TRUE(engine_->Cancel(bridge));
  EXPECT_TRUE(engine_->Cancel(a));
  EXPECT_TRUE(engine_->Cancel(b));
  EXPECT_EQ(engine_->num_live_shards(), 0u);
  EXPECT_EQ(engine_->num_pending(), 0u);
  EXPECT_EQ(engine_->sharded_stats().shards_gced, 1u);

  // A and B start out independent again...
  QueryId a2 = MustSubmit(Query("qa2", "A", "Ta"));
  QueryId b2 = MustSubmit(Query("qb2", "B", "Tb"));
  EXPECT_EQ(engine_->num_live_shards(), 2u);
  EXPECT_FALSE(engine_->SameShard(a2, b2));
  // ...and a fresh bridge re-merges them from scratch.
  QueryId bridge2 = MustSubmit(Query("qbr2", "C", "Tc", "A(Ta, x), B(Tb, x)"));
  EXPECT_EQ(engine_->num_live_shards(), 1u);
  EXPECT_TRUE(engine_->SameShard(a2, bridge2));
  EXPECT_TRUE(engine_->SameShard(b2, bridge2));
  EXPECT_EQ(engine_->sharded_stats().group_merges, 2u);
}

TEST_F(ShardedRoutingTest, GlobalIdsAreStableAcrossMigration) {
  QueryId a = MustSubmit(Query("qa", "A", "Ta"));
  QueryId b = MustSubmit(Query("qb", "B", "Tb"));
  QueryId c = MustSubmit(Query("qc", "C", "Tc"));
  QueryId bridge = MustSubmit(Query("qbr", "D", "Td",
                                    "A(Ta, x), B(Tb, x), C(Tc, x)"));
  // Migration renumbers shard-local ids but never the global ones.
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(bridge, 3);
  for (QueryId id : {a, b, c, bridge}) {
    EXPECT_TRUE(engine_->IsPending(id));
  }
  EXPECT_EQ(engine_->PendingQueries(), (std::vector<QueryId>{a, b, c, bridge}));
  // The master set still renders the queries under their original ids.
  EXPECT_EQ(engine_->queries().query(bridge).name, "qbr");
  EXPECT_EQ(engine_->ComponentOf(a), (std::vector<QueryId>{a, b, c, bridge}));

  // Cancelling the bridge splits the component; ids still stable even
  // though every query migrated shards.
  EXPECT_TRUE(engine_->Cancel(bridge));
  EXPECT_EQ(engine_->ComponentOf(a), (std::vector<QueryId>{a}));
  EXPECT_EQ(engine_->PendingQueries(), (std::vector<QueryId>{a, b, c}));
}

}  // namespace
}  // namespace entangled
