#include "api/session.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "core/parser.h"
#include "db/atom.h"

namespace entangled {
namespace {

/// Two head atoms that can denote the same answer fact: the query
/// double-books one answer slot.
bool HasDuplicateHeads(const EntangledQuery& query) {
  for (size_t i = 0; i < query.head.size(); ++i) {
    for (size_t j = i + 1; j < query.head.size(); ++j) {
      if (PositionwiseUnifiable(query.head[i], query.head[j])) return true;
    }
  }
  return false;
}

/// Definition 2 restricted to the singleton set: a postcondition of the
/// query unifies with more than one of the query's own heads.  Such a
/// query is unsafe in every set that contains it.
bool IsSelfUnsafe(const EntangledQuery& query) {
  for (const Atom& post : query.postconditions) {
    size_t targets = 0;
    for (const Atom& head : query.head) {
      if (PositionwiseUnifiable(post, head) && ++targets > 1) return true;
    }
  }
  return false;
}

/// Per-query admission check; kNone when the text passes (or when the
/// session forwards verbatim).  `message` receives the detail.  The
/// scratch parse is the deliberate price of checking *before* the
/// engine sees the query; sessions that forward verbatim
/// (reject_defective = false, e.g. the stress harness) skip it
/// entirely.
RejectReason CheckText(const SessionOptions& options, const std::string& text,
                       std::string* message) {
  if (!options.reject_defective) return RejectReason::kNone;
  QuerySet scratch;
  auto parsed = ParseQuery(text, &scratch);
  if (!parsed.ok()) {
    *message = parsed.status().message();
    return RejectReason::kParseError;
  }
  const EntangledQuery& query = scratch.query(*parsed);
  if (HasDuplicateHeads(query)) {
    *message = "two head atoms of '" + query.name +
               "' unify with each other (one answer slot booked twice)";
    return RejectReason::kDuplicateHead;
  }
  if (IsSelfUnsafe(query)) {
    *message = "a postcondition of '" + query.name +
               "' unifies with more than one of its own heads; no set "
               "containing it can satisfy Definition 2";
    return RejectReason::kUnsafe;
  }
  return RejectReason::kNone;
}

RejectReason ClassifyServiceRejection(const Status& status) {
  return status.IsInvalidArgument() ? RejectReason::kParseError
                                    : RejectReason::kInternal;
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kParseError:
      return "parse_error";
    case RejectReason::kDuplicateHead:
      return "duplicate_head";
    case RejectReason::kUnsafe:
      return "unsafe";
    case RejectReason::kSessionClosed:
      return "session_closed";
    case RejectReason::kInternal:
      return "internal";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ClientSession: thin forwarding layer (the manager owns all state that
// spans sessions).
// ---------------------------------------------------------------------------

SubmitOutcome ClientSession::Submit(const std::string& query_text) {
  return manager_->SubmitFor(this, query_text);
}

BatchOutcome ClientSession::SubmitBatch(
    const std::vector<std::string>& query_texts) {
  return manager_->SubmitBatchFor(this, query_texts);
}

bool ClientSession::Cancel(QueryId id) {
  return manager_->CancelFor(this, id);
}

std::vector<QueryId> ClientSession::PendingQueries() const {
  std::vector<QueryId> pending(pending_.begin(), pending_.end());
  std::sort(pending.begin(), pending.end());
  return pending;
}

std::vector<SessionEvent> ClientSession::PollEvents() {
  std::vector<SessionEvent> events(std::make_move_iterator(events_.begin()),
                                   std::make_move_iterator(events_.end()));
  events_.clear();
  return events;
}

void ClientSession::Close() {
  if (open_) manager_->CloseSession(this);
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(CoordinationService* service)
    : service_(service) {
  ENTANGLED_CHECK(service != nullptr);
  service_->set_delivery_callback(
      [this](const Delivery& delivery) { OnDelivery(delivery); });
}

SessionManager::~SessionManager() {
  service_->set_delivery_callback(nullptr);
}

ClientSession* SessionManager::Open(SessionOptions options) {
  const SessionId id = static_cast<SessionId>(sessions_.size());
  if (options.label.empty()) options.label = "s" + std::to_string(id);
  sessions_.emplace_back(
      new ClientSession(this, id, std::move(options)));
  ++num_open_;
  return sessions_.back().get();
}

bool SessionManager::Close(SessionId id) {
  ClientSession* session = Find(id);
  if (session == nullptr || !session->open()) return false;
  CloseSession(session);
  return true;
}

ClientSession* SessionManager::Find(SessionId id) {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) return nullptr;
  return sessions_[static_cast<size_t>(id)].get();
}

const ClientSession* SessionManager::Find(SessionId id) const {
  if (id < 0 || static_cast<size_t>(id) >= sessions_.size()) return nullptr;
  return sessions_[static_cast<size_t>(id)].get();
}

SessionId SessionManager::OwnerOf(QueryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= owner_.size()) return -1;
  return owner_[static_cast<size_t>(id)];
}

std::vector<const ClientSession*> SessionManager::sessions() const {
  std::vector<const ClientSession*> all;
  all.reserve(sessions_.size());
  for (const auto& session : sessions_) all.push_back(session.get());
  return all;
}

void SessionManager::RegisterOwnership(QueryId id, ClientSession* session) {
  if (static_cast<size_t>(id) >= owner_.size()) {
    owner_.resize(static_cast<size_t>(id) + 1, -1);
  }
  owner_[static_cast<size_t>(id)] = session->id();
  if (service_->AdmitsDeferred()) {
    // Deferred admission: the submission is queued, so it cannot have
    // delivered inside the submitting call — and probing IsPending here
    // would force a drain on every Submit, defeating the non-blocking
    // intake.  Register optimistically; OnDelivery erases the entry the
    // moment the queued query coordinates.
    session->pending_.insert(id);
    return;
  }
  // The query may already have delivered inside the submitting call
  // (per-arrival evaluation); only still-pending queries are tracked.
  if (service_->IsPending(id)) session->pending_.insert(id);
}

void SessionManager::OnDelivery(const Delivery& delivery) {
  // One shared, owned event; each owning session gets its own slice.
  // (This is the one deep copy of the materialized Delivery; avoiding
  // it would mean a shared_ptr-typed service callback for every
  // consumer, which is not worth it at delivery — not submission —
  // frequency.)
  auto shared = std::make_shared<const Delivery>(delivery);
  // session id -> that session's members, ascending (delivery.queries
  // is ascending and the map is ordered, so routing is deterministic).
  std::map<SessionId, std::vector<QueryId>> owners;
  for (const DeliveredQuery& q : delivery.queries) {
    SessionId owner = OwnerOf(q.id);
    if (owner < 0) owner = current_submitter_;  // assigned mid-submit
    if (owner < 0) continue;  // submitted directly on the service
    if (static_cast<size_t>(q.id) >= owner_.size() ||
        owner_[static_cast<size_t>(q.id)] < 0) {
      owner_.resize(std::max(owner_.size(), static_cast<size_t>(q.id) + 1),
                    -1);
      owner_[static_cast<size_t>(q.id)] = owner;
    }
    owners[owner].push_back(q.id);
    sessions_[static_cast<size_t>(owner)]->pending_.erase(q.id);
  }
  for (auto& [sid, own] : owners) {
    ClientSession* session = sessions_[static_cast<size_t>(sid)].get();
    SessionEvent event{sid, shared, std::move(own)};
    session->events_.push_back(event);
    ++session->deliveries_;
    // Push observes the event exactly as it is buffered, so the push
    // stream and a PollEvents() drain are byte-identical.  The handler
    // gets the stack copy, not a reference into events_: a push handler
    // may legally call PollEvents() (it touches no engine state), which
    // drains the deque out from under any buffered reference.
    if (session->event_callback_) {
      session->event_callback_(event);
    }
  }
}

SubmitOutcome SessionManager::SubmitFor(ClientSession* session,
                                        const std::string& query_text) {
  SubmitOutcome outcome;
  if (!session->open_) {
    outcome.reason = RejectReason::kSessionClosed;
    outcome.message = "session " + std::to_string(session->id_) + " is closed";
    return outcome;
  }
  outcome.reason = CheckText(session->options_, query_text, &outcome.message);
  if (!outcome.ok()) return outcome;

  current_submitter_ = session->id_;
  auto id = service_->Submit(query_text);
  current_submitter_ = -1;
  if (!id.ok()) {
    outcome.reason = ClassifyServiceRejection(id.status());
    outcome.message = id.status().message();
    return outcome;
  }
  ++session->submitted_;
  RegisterOwnership(*id, session);
  outcome.id = *id;
  return outcome;
}

BatchOutcome SessionManager::SubmitBatchFor(
    ClientSession* session, const std::vector<std::string>& query_texts) {
  BatchOutcome outcome;
  if (!session->open_) {
    outcome.reason = RejectReason::kSessionClosed;
    outcome.message = "session " + std::to_string(session->id_) + " is closed";
    return outcome;
  }
  for (size_t i = 0; i < query_texts.size(); ++i) {
    outcome.reason =
        CheckText(session->options_, query_texts[i], &outcome.message);
    if (!outcome.ok()) {
      outcome.rejected_index = i;
      return outcome;
    }
  }

  current_submitter_ = session->id_;
  auto ids = service_->SubmitBatch(query_texts);
  current_submitter_ = -1;
  if (!ids.ok()) {
    outcome.reason = ClassifyServiceRejection(ids.status());
    outcome.message = ids.status().message();
    // The service reports only the first error; locate the offending
    // text so the typed outcome stays precise (error path only).
    for (size_t i = 0; i < query_texts.size(); ++i) {
      QuerySet scratch;
      if (!ParseQuery(query_texts[i], &scratch).ok()) {
        outcome.rejected_index = i;
        break;
      }
    }
    return outcome;
  }
  session->submitted_ += ids->size();
  for (QueryId id : *ids) RegisterOwnership(id, session);
  outcome.ids = std::move(*ids);
  return outcome;
}

bool SessionManager::CancelFor(ClientSession* session, QueryId id) {
  if (!session->open_ || session->pending_.count(id) == 0) return false;
  if (service_->AdmitsDeferred()) {
    // Force the intake drain *before* deciding: queued submissions may
    // coordinate as they land, and each delivery routes through
    // OnDelivery, which erases the session's optimistic pending entry.
    // After the drain the session view is exact again.
    service_->IsPending(id);
    if (session->pending_.count(id) == 0) return false;  // just delivered
  }
  const bool cancelled = service_->Cancel(id);
  ENTANGLED_CHECK(cancelled)
      << "service disagreed about session-pending query " << id;
  session->pending_.erase(id);
  return true;
}

void SessionManager::CloseSession(ClientSession* session) {
  ENTANGLED_CHECK(session->open_);
  // Settle any queued submissions first: draining may deliver optimistic
  // entries (OnDelivery erases them), so the snapshot below is exact and
  // every Cancel in the loop is guaranteed to succeed.
  if (service_->AdmitsDeferred()) service_->num_pending();
  // Bulk-cancel in ascending order (deterministic dirty-marking in the
  // engine regardless of hash-set iteration order).
  std::vector<QueryId> pending = session->PendingQueries();
  for (QueryId id : pending) {
    const bool cancelled = service_->Cancel(id);
    ENTANGLED_CHECK(cancelled)
        << "service disagreed about session-pending query " << id;
  }
  session->pending_.clear();
  session->open_ = false;
  --num_open_;
}

}  // namespace entangled
