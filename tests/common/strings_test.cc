#include "common/strings.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("n=", 5, ", f=", 1.5), "n=5, f=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, JoinStreamed) {
  std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(JoinStreamed(xs, "-"), "1-2-3");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StartsAndEndsWith) {
  EXPECT_TRUE(StartsWith("flights", "fli"));
  EXPECT_FALSE(StartsWith("fli", "flights"));
  EXPECT_TRUE(EndsWith("flights", "hts"));
  EXPECT_FALSE(EndsWith("hts", "flights"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\n hi"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

}  // namespace
}  // namespace entangled
