#include <gtest/gtest.h>

#include "algo/consistent.h"
#include "algo/generic_solver.h"
#include "algo/scc_coordination.h"
#include "api/session.h"
#include "core/parser.h"
#include "core/properties.h"
#include "core/validator.h"
#include "system/engine.h"
#include "workload/consistent_workloads.h"
#include "workload/entangled_workloads.h"
#include "workload/scenarios.h"
#include "workload/social_data.h"

namespace entangled {
namespace {

/// Text in, coordinated answers out: the full §6.1 pipeline through the
/// session front door with a realistic mixed arrival stream, consumed
/// through the pull-based PollEvents() drain.
TEST(EndToEndTest, SessionsProcessMixedArrivalStream) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", 64).ok());
  CoordinationEngine engine(&db);
  SessionManager manager(&engine);

  // A lone traveller, one mutually-entangled pair, one chain of three,
  // and a query that never coordinates — each from its own session.
  // Postconditions use fresh variables (p1, p2): each chain member asks
  // the next to coordinate without demanding the *same* tuple.
  const std::vector<std::string> arrivals = {
      "solo:  { }              K(s)       :- Users(s, 'user9').",
      "pairA: { R(PB, x) }     R(PA, x)   :- Users(x, 'user1').",
      "chain1: { S(C2, p1) }   S(C1, a)   :- Users(a, 'user2').",
      "pairB: { R(PA, y) }     R(PB, y)   :- Users(y, 'user1').",
      "chain2: { S(C3, p2) }   S(C2, b)   :- Users(b, 'user3').",
      "stuck: { Nothing(n) }   S(C9, n)   :- Users(n, 'user4').",
      "chain3: { }             S(C3, c)   :- Users(c, 'user4').",
  };
  std::vector<ClientSession*> users;
  for (const std::string& text : arrivals) {
    users.push_back(manager.Open());
    SubmitOutcome outcome = users.back()->Submit(text);
    ASSERT_TRUE(outcome.ok())
        << text << ": " << RejectReasonName(outcome.reason) << " "
        << outcome.message;
  }

  // solo retires alone; the pair on pairB's arrival; the chain when
  // chain3 lands; stuck stays pending forever.  Every owner of a
  // coordinating set is notified, so the pull streams tile the log.
  size_t events = 0;
  for (ClientSession* user : users) {
    for (const SessionEvent& event : user->PollEvents()) {
      ++events;
      // Each delivered event re-validates against Definition 1.
      ASSERT_TRUE(ValidateSolution(db, engine.queries(),
                                   SolutionFromDelivery(*event.delivery))
                      .ok());
      ASSERT_EQ(event.own_queries.size(), 1u);
    }
  }
  EXPECT_EQ(events, 6u);  // six queries coordinated, one owner each
  EXPECT_EQ(manager.StatsSnapshot().coordinated_queries, 6u);
  ASSERT_EQ(manager.PendingQueries().size(), 1u);
  const QueryId stuck = manager.PendingQueries()[0];
  EXPECT_EQ(engine.queries().query(stuck).name, "stuck");
  EXPECT_EQ(manager.OwnerOf(stuck), users[5]->id());
  EXPECT_EQ(users[5]->num_pending(), 1u);
}

/// The two headline algorithms composed: a batch solved by the SCC
/// algorithm, whose leftover (unsafe) queries are the consistent
/// algorithm's turf.
TEST(EndToEndTest, PaperNarrativePipeline) {
  // Act I — §4: the band books a vacation (safe, not unique).
  Database vacation_db;
  QuerySet vacation_queries;
  FlightHotelIds ids =
      BuildFlightHotelScenario(&vacation_db, &vacation_queries);
  SccCoordinator scc(&vacation_db);
  auto vacation = scc.Solve(vacation_queries);
  ASSERT_TRUE(vacation.ok()) << vacation.status();
  EXPECT_EQ(vacation->queries,
            (std::vector<QueryId>{ids.qc, ids.qg}));

  // Act II — §5: the band catches a movie (unsafe, consistent).
  Database movie_db;
  MovieScenario movies = BuildMovieScenario(&movie_db);
  QuerySet converted;
  ConsistentConversion conversion =
      ToEntangledQueries(movies.schema, movies.queries, &converted);
  EXPECT_FALSE(IsSafeSet(converted));
  // The SCC algorithm rightly refuses ...
  SccCoordinator strict(&movie_db);
  EXPECT_TRUE(strict.Solve(converted).status().IsFailedPrecondition());
  // ... and the consistent algorithm delivers.
  ConsistentCoordinator consistent(&movie_db, movies.schema);
  auto night_out = consistent.Solve(movies.queries);
  ASSERT_TRUE(night_out.ok()) << night_out.status();
  EXPECT_EQ(night_out->agreed_value,
            (std::vector<Value>{Value::Str("Regal")}));
  // Cross-validate through the generic machinery.
  CoordinationSolution translated = ToCoordinationSolution(
      movie_db, movies.schema, movies.queries, conversion, *night_out);
  EXPECT_TRUE(ValidateSolution(movie_db, converted, translated).ok());
  // The exponential solver agrees a coordinating set exists here.
  GenericSolver generic(&movie_db);
  EXPECT_TRUE(generic.FindAny(converted).ok());
}

/// Scale sanity: the full Figure-4 configuration (82,168-row table, 100
/// queries) runs end to end in test time.
TEST(EndToEndTest, PaperScaleListWorkload) {
  Database db;
  ASSERT_TRUE(InstallSocialTable(&db, "Users", kSlashdotTableSize).ok());
  QuerySet set;
  MakeListWorkload(100, "Users", &set);
  SccCoordinator coordinator(&db);
  auto result = coordinator.Solve(set);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->queries.size(), 100u);
  EXPECT_EQ(coordinator.stats().db_queries, 100u);
  EXPECT_TRUE(ValidateSolution(db, set, *result).ok());
}

/// Scale sanity for §6.2: Figure 7's largest configuration (50 queries,
/// 1000 distinct values, complete friendships).
TEST(EndToEndTest, PaperScaleConsistentWorkload) {
  Database db;
  ASSERT_TRUE(InstallDistinctFlightsTable(&db, "Flights", 1000).ok());
  auto users = MakeUserNames(50);
  ASSERT_TRUE(InstallCompleteFriends(&db, "Friends", users).ok());
  ConsistentCoordinator coordinator(
      &db, MakeFlightSchema("Flights", "Friends"));
  auto result = coordinator.Solve(MakeWorstCaseConsistentQueries(50, 4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 50u);
  EXPECT_EQ(coordinator.stats().candidate_values, 1000u);
}

/// The concert-tour example (Example 2) exercised through both the
/// structured solver and the generic validator.
TEST(EndToEndTest, ConcertTourValidatesEndToEnd) {
  Database db;
  Rng rng(2012);
  ConcertScenario concert = BuildConcertScenario(&db, 10, &rng);
  ConsistentCoordinator coordinator(&db, concert.schema);
  auto result = coordinator.Solve(concert.queries);
  ASSERT_TRUE(result.ok()) << result.status();
  QuerySet converted;
  ConsistentConversion conversion =
      ToEntangledQueries(concert.schema, concert.queries, &converted);
  CoordinationSolution translated = ToCoordinationSolution(
      db, concert.schema, concert.queries, conversion, *result);
  EXPECT_TRUE(ValidateSolution(db, converted, translated).ok());
}

}  // namespace
}  // namespace entangled
