#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace entangled {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Successors(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(g.Predecessors(1), (std::vector<NodeId>{0}));
}

TEST(DigraphTest, AddNodeGrowsGraph) {
  Digraph g(1);
  NodeId n = g.AddNode();
  EXPECT_EQ(n, 1);
  EXPECT_EQ(g.num_nodes(), 2);
  g.AddEdge(0, n);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(DigraphTest, ParallelEdgesAllowed) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(DigraphTest, AddEdgeUniqueDeduplicates) {
  Digraph g(2);
  EXPECT_TRUE(g.AddEdgeUnique(0, 1));
  EXPECT_FALSE(g.AddEdgeUnique(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DigraphTest, SelfLoop) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(DigraphTest, Reversed) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.num_edges(), 2);
}

TEST(DigraphTest, InducedSubgraphRenumbers) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  std::vector<NodeId> mapping;
  Digraph sub = g.InducedSubgraph({true, false, true, true}, &mapping);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(mapping, (std::vector<NodeId>{0, -1, 1, 2}));
  // Surviving edges: 2->3 becomes 1->2, 3->0 becomes 2->0.
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_TRUE(sub.HasEdge(2, 0));
}

TEST(DigraphTest, ToStringMentionsCounts) {
  Digraph g(2);
  g.AddEdge(0, 1);
  std::string s = g.ToString();
  EXPECT_NE(s.find("2 nodes"), std::string::npos);
  EXPECT_NE(s.find("1 edges"), std::string::npos);
}

TEST(DigraphDeathTest, OutOfRangeAborts) {
  Digraph g(2);
  EXPECT_DEATH(g.AddEdge(0, 2), "bad target");
  EXPECT_DEATH(g.AddEdge(-1, 0), "bad source");
  EXPECT_DEATH(g.Successors(5), "bad node");
}

}  // namespace
}  // namespace entangled
