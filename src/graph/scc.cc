#include "graph/scc.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/reachability.h"

namespace entangled {

SccResult TarjanScc(const Digraph& graph) {
  const NodeId n = graph.num_nodes();
  constexpr NodeId kUnvisited = -1;

  std::vector<NodeId> index(static_cast<size_t>(n), kUnvisited);
  std::vector<NodeId> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<NodeId> stack;  // Tarjan's component stack

  SccResult result;
  result.component_of.assign(static_cast<size_t>(n), kUnvisited);
  NodeId next_index = 0;

  // Explicit DFS frames: (node, next successor offset).
  struct Frame {
    NodeId node;
    size_t next_child;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[static_cast<size_t>(root)] = next_index;
    lowlink[static_cast<size_t>(root)] = next_index;
    ++next_index;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& successors = graph.Successors(frame.node);
      if (frame.next_child < successors.size()) {
        NodeId child = successors[frame.next_child++];
        if (index[static_cast<size_t>(child)] == kUnvisited) {
          index[static_cast<size_t>(child)] = next_index;
          lowlink[static_cast<size_t>(child)] = next_index;
          ++next_index;
          stack.push_back(child);
          on_stack[static_cast<size_t>(child)] = true;
          frames.push_back({child, 0});
        } else if (on_stack[static_cast<size_t>(child)]) {
          lowlink[static_cast<size_t>(frame.node)] =
              std::min(lowlink[static_cast<size_t>(frame.node)],
                       index[static_cast<size_t>(child)]);
        }
      } else {
        // Node finished: maybe pop an SCC, then propagate lowlink.
        NodeId v = frame.node;
        if (lowlink[static_cast<size_t>(v)] ==
            index[static_cast<size_t>(v)]) {
          std::vector<NodeId> component;
          NodeId id = result.num_components();
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            result.component_of[static_cast<size_t>(w)] = id;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          result.members.push_back(std::move(component));
        }
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().node;
          lowlink[static_cast<size_t>(parent)] =
              std::min(lowlink[static_cast<size_t>(parent)],
                       lowlink[static_cast<size_t>(v)]);
        }
      }
    }
  }
  return result;
}

SccResult NaiveScc(const Digraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<bool>> reach(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    reach[static_cast<size_t>(v)] = ReachableFrom(graph, v);
  }
  SccResult result;
  result.component_of.assign(static_cast<size_t>(n), -1);
  // Group mutually-reachable nodes; component ids then get renumbered in
  // reverse topological order to match TarjanScc's contract.
  for (NodeId v = 0; v < n; ++v) {
    if (result.component_of[static_cast<size_t>(v)] != -1) continue;
    NodeId id = result.num_components();
    result.members.emplace_back();
    for (NodeId w = v; w < n; ++w) {
      if (result.component_of[static_cast<size_t>(w)] == -1 &&
          reach[static_cast<size_t>(v)][static_cast<size_t>(w)] &&
          reach[static_cast<size_t>(w)][static_cast<size_t>(v)]) {
        result.component_of[static_cast<size_t>(w)] = id;
        result.members[static_cast<size_t>(id)].push_back(w);
      }
    }
  }
  // Renumber: component A precedes B when A is reachable from B (sinks
  // first), using any member as the representative.
  const NodeId num_components = result.num_components();
  std::vector<std::vector<NodeId>> comp_succs(
      static_cast<size_t>(num_components));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.Successors(u)) {
      NodeId cu = result.component_of[static_cast<size_t>(u)];
      NodeId cv = result.component_of[static_cast<size_t>(v)];
      if (cu != cv) comp_succs[static_cast<size_t>(cu)].push_back(cv);
    }
  }
  // Kahn on the condensation, emitting sinks first.
  std::vector<int> out_degree(static_cast<size_t>(num_components), 0);
  std::vector<std::vector<NodeId>> comp_preds(
      static_cast<size_t>(num_components));
  for (NodeId c = 0; c < num_components; ++c) {
    std::sort(comp_succs[static_cast<size_t>(c)].begin(),
              comp_succs[static_cast<size_t>(c)].end());
    comp_succs[static_cast<size_t>(c)].erase(
        std::unique(comp_succs[static_cast<size_t>(c)].begin(),
                    comp_succs[static_cast<size_t>(c)].end()),
        comp_succs[static_cast<size_t>(c)].end());
    out_degree[static_cast<size_t>(c)] =
        static_cast<int>(comp_succs[static_cast<size_t>(c)].size());
    for (NodeId d : comp_succs[static_cast<size_t>(c)]) {
      comp_preds[static_cast<size_t>(d)].push_back(c);
    }
  }
  std::vector<NodeId> order;
  std::vector<NodeId> queue;
  for (NodeId c = 0; c < num_components; ++c) {
    if (out_degree[static_cast<size_t>(c)] == 0) queue.push_back(c);
  }
  while (!queue.empty()) {
    NodeId c = queue.back();
    queue.pop_back();
    order.push_back(c);
    for (NodeId p : comp_preds[static_cast<size_t>(c)]) {
      if (--out_degree[static_cast<size_t>(p)] == 0) queue.push_back(p);
    }
  }
  ENTANGLED_CHECK_EQ(order.size(), static_cast<size_t>(num_components));
  std::vector<NodeId> new_id(static_cast<size_t>(num_components));
  for (NodeId pos = 0; pos < num_components; ++pos) {
    new_id[static_cast<size_t>(order[static_cast<size_t>(pos)])] = pos;
  }
  SccResult renumbered;
  renumbered.component_of.resize(static_cast<size_t>(n));
  renumbered.members.resize(static_cast<size_t>(num_components));
  for (NodeId v = 0; v < n; ++v) {
    NodeId c = new_id[static_cast<size_t>(
        result.component_of[static_cast<size_t>(v)])];
    renumbered.component_of[static_cast<size_t>(v)] = c;
    renumbered.members[static_cast<size_t>(c)].push_back(v);
  }
  return renumbered;
}

}  // namespace entangled
