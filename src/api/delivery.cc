#include "api/delivery.h"

#include <algorithm>
#include <sstream>

namespace entangled {

std::vector<QueryId> Delivery::QueryIds() const {
  std::vector<QueryId> ids;
  ids.reserve(queries.size());
  for (const DeliveredQuery& q : queries) ids.push_back(q.id);
  return ids;
}

const DeliveredQuery* Delivery::Find(QueryId id) const {
  auto it = std::lower_bound(
      queries.begin(), queries.end(), id,
      [](const DeliveredQuery& q, QueryId target) { return q.id < target; });
  return it != queries.end() && it->id == id ? &*it : nullptr;
}

std::string Delivery::ToString() const {
  std::ostringstream out;
  out << "delivery #" << sequence << ": {";
  for (size_t i = 0; i < queries.size(); ++i) {
    out << (i == 0 ? "" : ", ") << queries[i].name;
  }
  out << "}\n";
  for (const DeliveredQuery& q : queries) {
    for (const Atom& answer : q.answers) {
      out << "  " << q.name << " <- " << answer.ToString() << "\n";
    }
  }
  out << "  witness: {";
  for (size_t i = 0; i < witness_names.size(); ++i) {
    const auto& [var, name] = witness_names[i];
    out << (i == 0 ? "" : ", ") << name << " = "
        << witness.at(var).ToString(/*quote=*/true);
  }
  out << "}";
  return out.str();
}

CoordinationSolution SolutionFromDelivery(const Delivery& delivery) {
  CoordinationSolution solution;
  solution.queries = delivery.QueryIds();
  solution.assignment = delivery.witness;
  return solution;
}

Delivery MakeDelivery(const QuerySet& set,
                      const CoordinationSolution& solution,
                      uint64_t sequence) {
  Delivery delivery;
  delivery.sequence = sequence;
  delivery.queries.reserve(solution.queries.size());
  for (QueryId id : solution.queries) {
    DeliveredQuery q;
    q.id = id;
    q.name = set.query(id).name;
    q.text = set.QueryToString(id);
    q.answers = solution.GroundedHeads(set, id);
    delivery.queries.push_back(std::move(q));
  }
  delivery.witness = solution.assignment;
  delivery.witness_names.reserve(delivery.witness.size());
  delivery.witness.ForEach([&](VarId var, const Value&) {
    delivery.witness_names.emplace_back(var, set.var_name(var));
  });
  return delivery;
}

}  // namespace entangled
