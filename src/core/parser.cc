#include "core/parser.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"

namespace entangled {
namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kColon,
  kColonDash,
  kDot,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      int line = line_, column = column_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back({TokenKind::kIdent, LexIdent(), line, column});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        tokens.push_back({TokenKind::kNumber, LexNumber(), line, column});
      } else if (c == '\'' || c == '"') {
        auto text = LexString();
        if (!text.ok()) return text.status();
        tokens.push_back({TokenKind::kString, *text, line, column});
      } else if (c == ':' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        Advance();
        Advance();
        tokens.push_back({TokenKind::kColonDash, ":-", line, column});
      } else {
        TokenKind kind;
        switch (c) {
          case '{': kind = TokenKind::kLBrace; break;
          case '}': kind = TokenKind::kRBrace; break;
          case '(': kind = TokenKind::kLParen; break;
          case ')': kind = TokenKind::kRParen; break;
          case ',': kind = TokenKind::kComma; break;
          case ':': kind = TokenKind::kColon; break;
          case '.': kind = TokenKind::kDot; break;
          default:
            return Status::InvalidArgument("line ", line_, ":", column_,
                                           ": unexpected character '", c,
                                           "'");
        }
        Advance();
        tokens.push_back({kind, std::string(1, c), line, column});
      }
    }
    tokens.push_back({TokenKind::kEnd, "", line_, column_});
    return tokens;
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    return text_.substr(start, pos_ - start);
  }

  std::string LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') Advance();
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Advance();
    }
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> LexString() {
    char quote = text_[pos_];
    int line = line_, column = column_;
    Advance();
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\n') {
        return Status::InvalidArgument("line ", line, ":", column,
                                       ": unterminated string literal");
      }
      value.push_back(text_[pos_]);
      Advance();
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("line ", line, ":", column,
                                     ": unterminated string literal");
    }
    Advance();  // closing quote
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, QuerySet* set)
      : tokens_(std::move(tokens)), set_(set) {}

  Result<std::vector<QueryId>> ParseProgram() {
    std::vector<QueryId> ids;
    while (Peek().kind != TokenKind::kEnd) {
      auto id = ParseOneQuery();
      if (!id.ok()) return id.status();
      ids.push_back(*id);
    }
    return ids;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  const Token& Next() {
    const Token& token = Peek();
    if (token.kind != TokenKind::kEnd) ++pos_;
    return token;
  }
  Status Expect(TokenKind kind, const char* context) {
    const Token& token = Peek();
    if (token.kind != kind) {
      return Status::InvalidArgument(
          "line ", token.line, ":", token.column, ": expected ",
          TokenKindName(kind), " ", context, ", found ",
          TokenKindName(token.kind),
          token.text.empty() ? "" : " '" + token.text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<QueryId> ParseOneQuery() {
    EntangledQuery query;
    vars_.clear();
    // Optional "name:" prefix.
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kColon) {
      query.name = Next().text;
      Next();  // ':'
    }
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kLBrace, "to open the postcondition list"));
    if (Peek().kind != TokenKind::kRBrace) {
      ENTANGLED_RETURN_IF_ERROR(
          ParseAtomList(&query.postconditions));
    }
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kRBrace, "to close the postcondition list"));
    ENTANGLED_RETURN_IF_ERROR(ParseAtomList(&query.head));
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kColonDash, "between head and body"));
    if (Peek().kind != TokenKind::kDot) {
      ENTANGLED_RETURN_IF_ERROR(ParseAtomList(&query.body));
    }
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kDot, "to terminate the query"));
    if (query.name.empty()) {
      query.name = "q" + std::to_string(set_->size());
    }
    return set_->AddQuery(std::move(query));
  }

  Status ParseAtomList(std::vector<Atom>* atoms) {
    while (true) {
      ENTANGLED_RETURN_IF_ERROR(ParseAtom(atoms));
      if (Peek().kind != TokenKind::kComma) return Status::OK();
      ++pos_;  // ','
    }
  }

  Status ParseAtom(std::vector<Atom>* atoms) {
    const Token& name = Peek();
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kIdent, "as a relation name"));
    Atom atom;
    atom.relation = name.text;
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kLParen, "after the relation name"));
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        auto term = ParseTerm();
        if (!term.ok()) return term.status();
        atom.terms.push_back(*term);
        if (Peek().kind != TokenKind::kComma) break;
        ++pos_;  // ','
      }
    }
    ENTANGLED_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "to close the atom"));
    atoms->push_back(std::move(atom));
    return Status::OK();
  }

  Result<Term> ParseTerm() {
    const Token& token = Next();
    switch (token.kind) {
      case TokenKind::kNumber:
        return Term::Int(std::stoll(token.text));
      case TokenKind::kString:
        return Term::Str(token.text);
      case TokenKind::kIdent: {
        if (token.text == "_") {
          // Fresh anonymous variable per occurrence.
          return Term::Var(set_->NewVar("_" + std::to_string(anon_++)));
        }
        char first = token.text[0];
        if (std::islower(static_cast<unsigned char>(first))) {
          auto [it, inserted] = vars_.try_emplace(token.text, 0);
          if (inserted) it->second = set_->NewVar(token.text);
          return Term::Var(it->second);
        }
        return Term::Str(token.text);
      }
      default:
        return Status::InvalidArgument(
            "line ", token.line, ":", token.column,
            ": expected a term, found ", TokenKindName(token.kind),
            token.text.empty() ? "" : " '" + token.text + "'");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  QuerySet* set_;
  std::unordered_map<std::string, VarId> vars_;  // per-query scope
  int anon_ = 0;
};

}  // namespace

Result<std::vector<QueryId>> ParseQueries(const std::string& text,
                                          QuerySet* set) {
  ENTANGLED_CHECK(set != nullptr);
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), set);
  return parser.ParseProgram();
}

Result<QueryId> ParseQuery(const std::string& text, QuerySet* set) {
  // Validate against a staging set first: a text holding zero or
  // several queries — or one that fails mid-parse after an earlier
  // query succeeded — must not leak partial parses into `set`.
  {
    QuerySet staging;
    auto ids = ParseQueries(text, &staging);
    if (!ids.ok()) return ids.status();
    if (ids->size() != 1) {
      return Status::InvalidArgument("expected exactly one query, found ",
                                     ids->size());
    }
  }
  auto ids = ParseQueries(text, set);
  ENTANGLED_CHECK(ids.ok() && ids->size() == 1)
      << "validated text re-parse failed";
  return (*ids)[0];
}

}  // namespace entangled
