#include "core/coordination_graph.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "workload/scenarios.h"

namespace entangled {
namespace {

TEST(CoordinationGraphTest, GwynethChrisExample) {
  // q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
  // q2 = { }           R(Chris, y)   :- Flights(y, Zurich)
  QuerySet set;
  QueryBuilder b1(&set, "q1");
  VarId x = b1.Var("x");
  b1.Post("R", {Term::Str("Chris"), Term::Var(x)});
  b1.Head("R", {Term::Str("Gwyneth"), Term::Var(x)});
  b1.Body("Flights", {Term::Var(x), Term::Str("Zurich")});
  QueryId q1 = b1.Build();
  QueryBuilder b2(&set, "q2");
  VarId y = b2.Var("y");
  b2.Head("R", {Term::Str("Chris"), Term::Var(y)});
  b2.Body("Flights", {Term::Var(y), Term::Str("Zurich")});
  QueryId q2 = b2.Build();

  ExtendedCoordinationGraph ecg(set);
  ASSERT_EQ(ecg.edges().size(), 1u);
  EXPECT_EQ(ecg.edges()[0].from, q1);
  EXPECT_EQ(ecg.edges()[0].to, q2);
  EXPECT_EQ(ecg.edges()[0].post_index, 0u);
  EXPECT_EQ(ecg.edges()[0].head_index, 0u);

  Digraph graph = ecg.Collapse();
  EXPECT_TRUE(graph.HasEdge(q1, q2));
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(CoordinationGraphTest, FlightHotelExtendedGraphMatchesFigure2) {
  Database db;
  QuerySet set;
  FlightHotelIds ids = BuildFlightHotelScenario(&db, &set);

  ExtendedCoordinationGraph ecg(set);
  // Figure 2 has seven extended edges:
  //   qC.R(G,x1)  -> qG.R(G,y1)
  //   qG.R(C,y1)  -> qC.R(C,x1)      qG.Q(C,y2) -> qC.Q(C,x2)
  //   qJ.R(C,z1)  -> qC.R(C,x1)      qJ.R(G,z1) -> qG.R(G,y1)
  //   qW.R(C,w1)  -> qC.R(C,x1)      qW.Q(J,w2) -> qJ.Q(J,z2)
  EXPECT_EQ(ecg.edges().size(), 7u);

  auto has_edge = [&](QueryId from, size_t pi, QueryId to) {
    for (const ExtendedEdge& e : ecg.edges()) {
      if (e.from == from && e.post_index == pi && e.to == to) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(ids.qc, 0, ids.qg));
  EXPECT_TRUE(has_edge(ids.qg, 0, ids.qc));
  EXPECT_TRUE(has_edge(ids.qg, 1, ids.qc));
  EXPECT_TRUE(has_edge(ids.qj, 0, ids.qc));
  EXPECT_TRUE(has_edge(ids.qj, 1, ids.qg));
  EXPECT_TRUE(has_edge(ids.qw, 0, ids.qc));
  EXPECT_TRUE(has_edge(ids.qw, 1, ids.qj));

  // The collapsed graph of §2.3: qW -> {qJ, qC}, qJ -> {qG, qC},
  // qG <-> qC.  qG's two postconditions both target qC, so the seven
  // extended edges collapse to six.
  Digraph graph = ecg.Collapse();
  EXPECT_EQ(graph.num_edges(), 6);
  EXPECT_TRUE(graph.HasEdge(ids.qc, ids.qg));
  EXPECT_TRUE(graph.HasEdge(ids.qg, ids.qc));
  EXPECT_TRUE(graph.HasEdge(ids.qj, ids.qc));
  EXPECT_TRUE(graph.HasEdge(ids.qj, ids.qg));
  EXPECT_TRUE(graph.HasEdge(ids.qw, ids.qc));
  EXPECT_TRUE(graph.HasEdge(ids.qw, ids.qj));
  EXPECT_FALSE(graph.HasEdge(ids.qc, ids.qj));
}

TEST(CoordinationGraphTest, CollapseDropsParallelEdges) {
  // Two postconditions of q1 both point at q2's two heads -> up to four
  // extended edges but a single collapsed edge.
  QuerySet set;
  QueryBuilder b1(&set, "q1");
  VarId a = b1.Var("a");
  VarId b = b1.Var("b");
  b1.Post("R", {Term::Var(a)});
  b1.Post("R", {Term::Var(b)});
  b1.Head("H1", {Term::Var(a)});
  QueryId q1 = b1.Build();
  QueryBuilder b2(&set, "q2");
  VarId c = b2.Var("c");
  VarId d = b2.Var("d");
  b2.Head("R", {Term::Var(c)});
  b2.Head("R", {Term::Var(d)});
  QueryId q2 = b2.Build();

  ExtendedCoordinationGraph ecg(set);
  EXPECT_EQ(ecg.edges().size(), 4u);
  Digraph graph = ecg.Collapse();
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_TRUE(graph.HasEdge(q1, q2));
}

TEST(CoordinationGraphTest, SelfEdgeWhenOwnHeadUnifies) {
  QuerySet set;
  QueryBuilder b(&set, "q");
  VarId x = b.Var("x");
  b.Post("R", {Term::Var(x)});
  b.Head("R", {Term::Int(1)});
  QueryId q = b.Build();
  Digraph graph = BuildCoordinationGraph(set);
  EXPECT_TRUE(graph.HasEdge(q, q));
}

TEST(CoordinationGraphTest, ConstantMismatchMeansNoEdge) {
  QuerySet set;
  QueryBuilder b1(&set, "q1");
  VarId x = b1.Var("x");
  b1.Post("R", {Term::Str("G"), Term::Var(x)});
  b1.Head("R", {Term::Str("C"), Term::Var(x)});
  b1.Build();
  QueryBuilder b2(&set, "q2");
  VarId y = b2.Var("y");
  b2.Head("R", {Term::Str("J"), Term::Var(y)});
  b2.Build();
  ExtendedCoordinationGraph ecg(set);
  EXPECT_TRUE(ecg.edges().empty());
}

TEST(CoordinationGraphTest, EdgesOfPostconditionFilters) {
  QuerySet set;
  QueryBuilder b1(&set, "q1");
  VarId x = b1.Var("x");
  VarId z = b1.Var("z");
  b1.Post("A", {Term::Var(x)});
  b1.Post("B", {Term::Var(z)});
  b1.Head("H", {Term::Var(x)});
  QueryId q1 = b1.Build();
  QueryBuilder b2(&set, "q2");
  VarId y = b2.Var("y");
  b2.Head("A", {Term::Var(y)});
  b2.Head("B", {Term::Var(y)});
  b2.Build();

  ExtendedCoordinationGraph ecg(set);
  EXPECT_EQ(ecg.EdgesOfPostcondition(q1, 0).size(), 1u);
  EXPECT_EQ(ecg.EdgesOfPostcondition(q1, 1).size(), 1u);
  EXPECT_EQ(ecg.OutEdges(q1).size(), 2u);
}

TEST(CoordinationGraphTest, ToStringNamesEndpoints) {
  QuerySet set;
  QueryBuilder b1(&set, "alpha");
  VarId x = b1.Var("x");
  b1.Post("R", {Term::Var(x)});
  b1.Head("H", {Term::Var(x)});
  b1.Build();
  QueryBuilder b2(&set, "beta");
  VarId y = b2.Var("y");
  b2.Head("R", {Term::Var(y)});
  b2.Build();
  ExtendedCoordinationGraph ecg(set);
  std::string s = ecg.ToString(set);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

}  // namespace
}  // namespace entangled
