#include "db/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace entangled {
namespace {

/// Candidate row ids for `atom` under the current bindings: probe the
/// most selective bound column's index, or fall back to a full scan.
/// Returns nullptr to mean "all rows" (avoids materializing 0..n-1).
const std::vector<RowId>* Candidates(const Relation& relation,
                                     const Atom& atom, const Binding& binding,
                                     std::vector<RowId>* scratch) {
  std::optional<size_t> best_column;
  Value best_value;
  size_t best_bucket = relation.size() + 1;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    const Value* bound = nullptr;
    if (term.is_constant()) {
      bound = &term.constant();
    } else {
      auto it = binding.find(term.var());
      if (it != binding.end()) bound = &it->second;
    }
    if (bound == nullptr) continue;
    size_t bucket = relation.Probe(i, *bound).size();
    if (bucket < best_bucket) {
      best_bucket = bucket;
      best_column = i;
      best_value = *bound;
    }
    if (bucket == 0) break;  // cannot get more selective
  }
  if (!best_column.has_value()) return nullptr;  // full scan
  *scratch = relation.Probe(*best_column, best_value);
  return scratch;
}

}  // namespace

Evaluator::Evaluator(const Database* db) : db_(db) {
  ENTANGLED_CHECK(db != nullptr);
}

Status Evaluator::Validate(const std::vector<Atom>& body) const {
  for (const Atom& atom : body) {
    const Relation* relation = db_->Find(atom.relation);
    if (relation == nullptr) {
      return Status::NotFound("body atom ", atom.ToString(),
                              " references unknown relation ", atom.relation);
    }
    if (relation->arity() != atom.arity()) {
      return Status::InvalidArgument(
          "body atom ", atom.ToString(), " has arity ", atom.arity(),
          " but relation ", atom.relation, " has arity ", relation->arity());
    }
  }
  return Status::OK();
}

std::vector<size_t> Evaluator::OrderAtoms(const std::vector<Atom>& body,
                                          const Binding& initial) const {
  // Greedy static join order: repeatedly pick the atom with the most
  // bound positions (constants + already-bound variables); break ties by
  // smaller relation.  Keeps the backtracking join selective.
  std::unordered_set<VarId> bound;
  for (const auto& [var, value] : initial) bound.insert(var);

  std::vector<size_t> order;
  std::vector<bool> used(body.size(), false);
  for (size_t step = 0; step < body.size(); ++step) {
    size_t best = body.size();
    size_t best_bound_count = 0;
    size_t best_size = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      size_t bound_count = 0;
      for (const Term& term : body[i].terms) {
        if (term.is_constant() ||
            (term.is_variable() && bound.count(term.var()) > 0)) {
          ++bound_count;
        }
      }
      const Relation* relation = db_->Find(body[i].relation);
      size_t size = relation == nullptr ? 0 : relation->size();
      if (best == body.size() || bound_count > best_bound_count ||
          (bound_count == best_bound_count && size < best_size)) {
        best = i;
        best_bound_count = bound_count;
        best_size = size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Term& term : body[best].terms) {
      if (term.is_variable()) bound.insert(term.var());
    }
  }
  return order;
}

template <typename Callback>
void Evaluator::Search(const std::vector<Atom>& body, const Binding& initial,
                       Callback&& on_solution) const {
  for (const Atom& atom : body) {
    const Relation* relation = db_->Find(atom.relation);
    ENTANGLED_CHECK(relation != nullptr)
        << "unknown relation " << atom.relation << "; call Validate() first";
    ENTANGLED_CHECK_EQ(relation->arity(), atom.arity())
        << "arity mismatch on " << atom.ToString();
  }

  std::vector<size_t> order = OrderAtoms(body, initial);
  Binding binding = initial;
  // Tallied locally and added to the shared (atomic) counters once per
  // query: an atomic fetch_add per candidate row in the innermost join
  // loop would have every parallel-flush worker ping-ponging one cache
  // line of the shared Database.
  uint64_t rows_matched = 0;

  // Explicit recursion over atom positions with a per-frame trail so
  // bindings roll back on backtrack.
  auto recurse = [&](auto&& self, size_t depth) -> bool {
    if (depth == body.size()) return on_solution(binding);
    const Atom& atom = body[order[depth]];
    const Relation& relation = *db_->Find(atom.relation);

    std::vector<RowId> scratch;
    const std::vector<RowId>* candidates =
        Candidates(relation, atom, binding, &scratch);

    auto try_row = [&](const Tuple& row) -> bool {
      ++rows_matched;
      std::vector<VarId> trail;
      bool match = true;
      for (size_t i = 0; i < atom.terms.size() && match; ++i) {
        const Term& term = atom.terms[i];
        if (term.is_constant()) {
          match = (term.constant() == row[i]);
        } else {
          auto [it, inserted] = binding.try_emplace(term.var(), row[i]);
          if (inserted) {
            trail.push_back(term.var());
          } else {
            match = (it->second == row[i]);
          }
        }
      }
      bool stop = match && self(self, depth + 1);
      for (VarId var : trail) binding.erase(var);
      return stop;
    };

    if (candidates == nullptr) {
      for (const Tuple& row : relation.rows()) {
        if (try_row(row)) return true;
      }
    } else {
      for (RowId id : *candidates) {
        if (try_row(relation.row(id))) return true;
      }
    }
    return false;
  };
  recurse(recurse, 0);
  db_->stats().rows_matched += rows_matched;
}

std::optional<Binding> Evaluator::FindOne(const std::vector<Atom>& body,
                                          const Binding& initial) const {
  ++db_->stats().conjunctive_queries;
  std::optional<Binding> result;
  Search(body, initial, [&](const Binding& solution) {
    result = solution;
    return true;  // stop at the first witness (choose-1 semantics)
  });
  return result;
}

bool Evaluator::Satisfiable(const std::vector<Atom>& body,
                            const Binding& initial) const {
  return FindOne(body, initial).has_value();
}

std::vector<std::vector<Value>> Evaluator::EnumerateDistinct(
    const std::vector<Atom>& body, const std::vector<VarId>& projection,
    const Binding& initial) const {
  ++db_->stats().enumerate_queries;
  std::vector<std::vector<Value>> result;
  std::unordered_set<std::vector<Value>, VectorHash> seen;
  Search(body, initial, [&](const Binding& solution) {
    std::vector<Value> key;
    key.reserve(projection.size());
    for (VarId var : projection) {
      auto it = solution.find(var);
      ENTANGLED_CHECK(it != solution.end())
          << "projection variable ?" << var << " does not occur in the body";
      key.push_back(it->second);
    }
    if (seen.insert(key).second) result.push_back(std::move(key));
    return false;  // keep enumerating
  });
  return result;
}

uint64_t Evaluator::CountSolutions(const std::vector<Atom>& body,
                                   const Binding& initial) const {
  ++db_->stats().enumerate_queries;
  uint64_t count = 0;
  Search(body, initial, [&](const Binding&) {
    ++count;
    return false;
  });
  return count;
}

}  // namespace entangled
