#ifndef ENTANGLED_DB_LOADER_H_
#define ENTANGLED_DB_LOADER_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "db/database.h"

namespace entangled {

/// \brief Populates a Database from the textual `.edb` format used by
/// the command-line driver:
///
///     % flights demo
///     relation Flights(flightId, destination) {
///       (101, Zurich)
///       (102, 'New York')
///     }
///     relation Friends(user, friend) {
///       (Ann, Bob)
///     }
///
/// Bare numbers load as integers; identifiers and quoted strings load
/// as strings.  `%` and `//` start line comments.  Relations may appear
/// multiple times (tuples accumulate) as long as arities agree.
Status LoadDatabase(const std::string& text, Database* db);

/// \brief Loads a `.edb` file from disk.
Status LoadDatabaseFile(const std::string& path, Database* db);

/// \brief Serializes a database in the same format (stable order:
/// relations by creation, tuples by insertion); LoadDatabase(Dump(db))
/// reproduces the instance.
std::string DumpDatabase(const Database& db);

/// \brief Reads a whole file into a string (NotFound on failure).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace entangled

#endif  // ENTANGLED_DB_LOADER_H_
