#ifndef ENTANGLED_CORE_COORDINATION_GRAPH_H_
#define ENTANGLED_CORE_COORDINATION_GRAPH_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "graph/digraph.h"

namespace entangled {

/// \brief One edge of the extended coordination graph (§2.3): the
/// postcondition atom `postconditions[post_index]` of query `from`
/// unifies (positionwise) with the head atom `head[head_index]` of query
/// `to` — i.e. `from` potentially needs `to`'s head to be satisfied.
struct ExtendedEdge {
  QueryId from;
  size_t post_index;
  QueryId to;
  size_t head_index;

  friend bool operator==(const ExtendedEdge& a, const ExtendedEdge& b) {
    return a.from == b.from && a.post_index == b.post_index &&
           a.to == b.to && a.head_index == b.head_index;
  }
};

/// \brief The extended coordination graph: a directed multigraph over
/// the query set, with one edge per unifiable (postcondition, head)
/// pair.
class ExtendedCoordinationGraph {
 public:
  /// Builds the graph over all queries of `set` (quadratic in the number
  /// of atoms; in realistic workloads the graph is very sparse, §4).
  explicit ExtendedCoordinationGraph(const QuerySet& set);

  const std::vector<ExtendedEdge>& edges() const { return edges_; }
  size_t num_queries() const { return out_.size(); }

  /// Edge indices leaving query q (one per matching (post, head) pair).
  const std::vector<size_t>& OutEdges(QueryId q) const;

  /// Edge indices leaving the specific postcondition `post_index` of
  /// query q; the paper's safety condition is |this| <= 1 for every
  /// postcondition (Definition 2).
  std::vector<size_t> EdgesOfPostcondition(QueryId q,
                                           size_t post_index) const;

  /// The (collapsed) coordination graph: one node per query, an edge
  /// (q, q') when some postcondition of q unifies with some head of q'.
  /// Self-loops are kept (they collapse inside SCCs anyway).
  Digraph Collapse() const;

  std::string ToString(const QuerySet& set) const;

 private:
  std::vector<ExtendedEdge> edges_;
  std::vector<std::vector<size_t>> out_;  // per query, edge indices
};

/// \brief Convenience: the collapsed coordination graph of a query set.
Digraph BuildCoordinationGraph(const QuerySet& set);

}  // namespace entangled

#endif  // ENTANGLED_CORE_COORDINATION_GRAPH_H_
