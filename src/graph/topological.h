#ifndef ENTANGLED_GRAPH_TOPOLOGICAL_H_
#define ENTANGLED_GRAPH_TOPOLOGICAL_H_

#include <vector>

#include "common/result.h"
#include "graph/digraph.h"

namespace entangled {

/// Topological order of a DAG (sources first); error Status when the
/// graph has a cycle.  Kahn's algorithm; ties are broken by smaller node
/// id so the order is deterministic.
Result<std::vector<NodeId>> TopologicalOrder(const Digraph& graph);

/// Reverse topological order (sinks first) — the order in which the SCC
/// Coordination Algorithm sweeps the components graph (§4).
Result<std::vector<NodeId>> ReverseTopologicalOrder(const Digraph& graph);

/// Whether `order` is a permutation of the nodes listing every edge's
/// source before its target.
bool IsTopologicalOrder(const Digraph& graph,
                        const std::vector<NodeId>& order);

}  // namespace entangled

#endif  // ENTANGLED_GRAPH_TOPOLOGICAL_H_
