#ifndef ENTANGLED_ALGO_SINGLE_CONNECTED_H_
#define ENTANGLED_ALGO_SINGLE_CONNECTED_H_

#include "algo/generic_solver.h"
#include "algo/stats.h"
#include "common/result.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief Solver for single-connected sets (Definition 6 / Theorem 3):
/// every query has at most one postcondition and the coordination graph
/// has at most one simple path between any two queries.
///
/// Theorem 3 states Entangled restricted to this class is solvable with
/// a linear number of conjunctive queries; the constructive proof lives
/// in an appendix section that the paper text does not include, so this
/// implementation realizes the *feasibility* claim as follows: it
/// verifies the class membership, then runs the complete backtracking
/// search.  On single-connected inputs the branches of that search lead
/// into pairwise-disjoint subtrees (two branches reconverging would
/// create two simple paths), so no partial matching is ever explored
/// twice and the database-query count stays linear in |Q| plus the
/// number of alternative heads — which tests assert on representative
/// instances.  Outputs are always exact; only the worst-case bound is
/// heuristic.
class SingleConnectedSolver {
 public:
  explicit SingleConnectedSolver(const Database* db);

  /// OK with a coordinating set, NotFound when none exists,
  /// FailedPrecondition when the set is not single-connected.
  Result<CoordinationSolution> Solve(const QuerySet& set);

  const SolverStats& stats() const { return stats_; }

 private:
  const Database* db_;
  SolverStats stats_;
};

}  // namespace entangled

#endif  // ENTANGLED_ALGO_SINGLE_CONNECTED_H_
