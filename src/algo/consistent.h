#ifndef ENTANGLED_ALGO_CONSISTENT_H_
#define ENTANGLED_ALGO_CONSISTENT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/stats.h"
#include "common/result.h"
#include "core/grounding.h"
#include "core/query.h"
#include "db/database.h"

namespace entangled {

/// \brief The application schema the Consistent Coordination Algorithm
/// is specialized to (paper §5): one "thing" relation S whose column 0
/// is a unique key and whose remaining columns are attributes, one
/// binary friendship relation F(user, friend), and a fixed set A of
/// *coordination attributes* every user coordinates on.
struct ConsistentSchema {
  std::string thing_relation;            ///< e.g. "Flights"
  std::string friends_relation;          ///< e.g. "Friends"
  std::vector<size_t> coordination_attrs;  ///< column indices of S (>= 1)
};

/// \brief One coordination requirement of a consistent query: a named
/// user (a constant in the postcondition), or "at least k of my
/// friends" drawn from a binary relation (a friend variable, plus the
/// paper's §5-Discussion generalizations: several relations may supply
/// partners, and k > 1 is supported even though it is *not expressible*
/// in the entangled-query syntax itself).
struct PartnerSpec {
  enum class Kind {
    kNamedUser,  ///< coordinate with this specific user
    kFriends,    ///< coordinate with >= min_friends distinct friends
  };

  /// A specific user, named as a constant.
  static PartnerSpec User(std::string name) {
    PartnerSpec spec;
    spec.kind = Kind::kNamedUser;
    spec.user = std::move(name);
    return spec;
  }
  /// Any single friend; `relation` overrides the schema's friendship
  /// relation ("" uses the default).
  static PartnerSpec AnyFriend(std::string relation = "") {
    return KFriends(1, std::move(relation));
  }
  /// At least `k` distinct friends from `relation` (default schema
  /// relation when empty).
  static PartnerSpec KFriends(int k, std::string relation = "") {
    PartnerSpec spec;
    spec.kind = Kind::kFriends;
    spec.min_friends = k;
    spec.relation = std::move(relation);
    return spec;
  }

  bool is_friend_variable() const { return kind == Kind::kFriends; }

  Kind kind = Kind::kNamedUser;
  std::string user;       ///< engaged iff kind == kNamedUser
  int min_friends = 1;    ///< engaged iff kind == kFriends
  std::string relation;   ///< friendship relation override ("" = default)

  std::string ToString() const {
    if (kind == Kind::kNamedUser) return user;
    std::string source = relation.empty() ? "friends" : relation;
    if (min_friends == 1) return "<any of my " + source + ">";
    return "<at least " + std::to_string(min_friends) + " of my " +
           source + ">";
  }
};

/// \brief An A-consistent entangled query in structured form
/// (Definition 9): the user, their constraints on S's attribute columns
/// (nullopt = "don't care"), and their coordination partners.
///
/// A-consistency is built into the representation: constraints on
/// coordination attributes apply to the user *and* every partner
/// (A-coordinating), while partners are unconstrained on the remaining
/// attributes (A-non-coordinating).  ToEntangledQueries spells out the
/// equivalent general-form entangled queries.
struct ConsistentQuery {
  std::string user;
  /// Per attribute column of S (index 0 of this vector = S column 1).
  std::vector<std::optional<Value>> self_spec;
  std::vector<PartnerSpec> partners;
};

/// \brief Per-user outcome of a consistent coordination.
struct ConsistentMember {
  size_t query_index;   ///< index into the input query vector
  RowId self_row;       ///< chosen tuple of S for this user
  /// For each PartnerSpec of the query, the input-indices of the
  /// queries chosen as partners: exactly one for a named user, at least
  /// min_friends distinct ones for a friends requirement.
  std::vector<std::vector<size_t>> partner_queries;
};

/// \brief A coordinating set in which every member agrees on the
/// coordination attributes (Proposition 1 guarantees this loses
/// nothing).
struct ConsistentSolution {
  std::vector<Value> agreed_value;       ///< the common A-tuple v
  std::vector<ConsistentMember> members; ///< sorted by query_index

  size_t size() const { return members.size(); }
  bool ContainsQuery(size_t query_index) const;
  const ConsistentMember* FindMember(size_t query_index) const;
};

/// \brief Options for ConsistentCoordinator.
struct ConsistentOptions {
  /// Use the relation's cached group/hash indexes when computing V(q)
  /// (ablation A2 of DESIGN.md runs with this off: every V(q) becomes a
  /// full scan).
  bool use_indexes = true;

  /// Worker threads for the per-value cleaning loop — the
  /// parallelization §6.2 leaves as future work ("each possible value
  /// can be easily checked independently").  Results are identical for
  /// any thread count; 1 runs the paper's sequential algorithm.
  int num_threads = 1;
};

/// \brief The Consistent Coordination Algorithm (paper §5): finds a
/// coordinating set for *unsafe* sets, provided every query is
/// A-consistent for the same coordination attributes A.
///
/// Pipeline: compute the option list V(q) for every query (one database
/// enumeration each); build the pruned coordination graph (constant
/// partners + friendship edges); for every candidate value v in
/// V(Q) = ∪ V(q), restrict to G_v and iteratively remove queries whose
/// coordination requirements fail; return the largest surviving set.
///
/// Guarantee: the maximum-size coordinating set among those whose
/// members agree on A (Proposition 1: one exists whenever any
/// coordinating set does).  Cost: O(|Q|) database work plus
/// O(|V(Q)|·|Q|^2) cleaning.
class ConsistentCoordinator {
 public:
  ConsistentCoordinator(const Database* db, ConsistentSchema schema,
                        ConsistentOptions options = {});

  /// Schema/shape validation: relations exist, attribute indices are in
  /// range, users are distinct, nobody partners with themselves.
  Status ValidateInput(const std::vector<ConsistentQuery>& queries) const;

  /// OK with the best single-value coordinating set; NotFound when no
  /// value admits one; InvalidArgument on malformed input.
  Result<ConsistentSolution> Solve(
      const std::vector<ConsistentQuery>& queries);

  const SolverStats& stats() const { return stats_; }

  /// (value, surviving-set size) for every candidate value examined by
  /// the last Solve, in examination order — the movie example's
  /// "Cinemark fails, Regal wins" trace.
  const std::vector<std::pair<std::vector<Value>, size_t>>& value_outcomes()
      const {
    return value_outcomes_;
  }

  const ConsistentSchema& schema() const { return schema_; }

 private:
  const Database* db_;
  ConsistentSchema schema_;
  ConsistentOptions options_;
  SolverStats stats_;
  std::vector<std::pair<std::vector<Value>, size_t>> value_outcomes_;
};

/// \brief Bookkeeping produced by ToEntangledQueries so that solutions
/// can be translated between the structured and the general form.
struct ConsistentConversion {
  struct PartnerVars {
    VarId key;                          ///< y_i
    std::optional<VarId> friend_name;   ///< f, for friend-variable partners
    /// Per attribute column: the fresh variable used for a
    /// non-coordination attribute (nullopt when the position is a shared
    /// coordination term or constant).
    std::vector<std::optional<VarId>> attrs;
  };
  struct QueryVars {
    VarId self_key;  ///< x
    /// Per attribute column: variable for unconstrained positions.
    std::vector<std::optional<VarId>> self_attrs;
    /// One entry per *emitted postcondition* (a KFriends spec with
    /// min_friends = k emits k of them).
    std::vector<PartnerVars> partners;
    /// Maps each PartnerSpec of the source query to its indices in
    /// `partners`.
    std::vector<std::vector<size_t>> spec_slots;
  };
  std::vector<QueryId> query_ids;
  std::vector<QueryVars> vars;
};

/// \brief Spells a structured consistent instance out as general-form
/// entangled queries (§5 "the general form of his query"), appending
/// them to `*set`.  The result is typically *unsafe* — that is the point
/// of the consistent algorithm.
///
/// A KFriends(k > 1) spec becomes k friend-variable postconditions;
/// entangled-query syntax cannot force the k friends to be *distinct*
/// (the paper notes this in §5's Discussion), so the converted set is a
/// relaxation.  Solutions produced by ConsistentCoordinator use
/// distinct friends and therefore still validate against it.
ConsistentConversion ToEntangledQueries(
    const ConsistentSchema& schema,
    const std::vector<ConsistentQuery>& queries, QuerySet* set);

/// \brief Translates a ConsistentSolution into a Definition-1 solution
/// over the converted query set, so the independent validator can audit
/// the consistent algorithm end-to-end.
CoordinationSolution ToCoordinationSolution(
    const Database& db, const ConsistentSchema& schema,
    const std::vector<ConsistentQuery>& queries,
    const ConsistentConversion& conversion,
    const ConsistentSolution& solution);

}  // namespace entangled

#endif  // ENTANGLED_ALGO_CONSISTENT_H_
