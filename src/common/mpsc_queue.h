#ifndef ENTANGLED_COMMON_MPSC_QUEUE_H_
#define ENTANGLED_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace entangled {

/// \brief Bounded lock-free multi-producer single-consumer queue
/// (Vyukov bounded-queue cell/sequence scheme restricted to one
/// consumer).
///
/// Producers claim a monotone **ticket** with one fetch_add on the
/// enqueue cursor; the consumer pops strictly in ticket order.  The
/// ticket therefore defines a total arrival order across producers —
/// the engine's intake path uses it to predict the global QueryId an
/// event will adopt when drained, with a single atomic op establishing
/// both the id and the FIFO position (no separate id counter to race
/// against the push).
///
/// Capacity is rounded up to a power of two.  TryPush fails (without
/// blocking) when the ring is full; Push spins with yields until space
/// frees — callers that might be the consumer thread must drain instead
/// of blocking (see CoordinationEngine::DrainIntake).
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    if (cap < 2) cap = 2;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_.reset(new Cell[cap]);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Destroys any unconsumed items (drain-on-destroy).
  ~MpscQueue() {
    T scratch;
    while (TryPop(&scratch)) {
    }
  }

  /// Attempts to enqueue without blocking.  On success stores the
  /// claimed ticket (the 0-based position in the queue's total arrival
  /// order) into `*ticket` when non-null and returns true; returns
  /// false when the ring is full — in which case `value` is NOT
  /// consumed (it is only moved from once a cell is claimed), so the
  /// caller can drain and retry with the same object.
  bool TryPush(T&& value, uint64_t* ticket = nullptr) {
    Cell* cell;
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      uint64_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    ::new (cell->storage) T(std::move(value));
    cell->seq.store(pos + 1, std::memory_order_release);
    if (ticket != nullptr) *ticket = pos;
    return true;
  }

  /// Enqueues, spinning (with yields) while the ring is full.  Returns
  /// the claimed ticket.  Must not be called from the consumer thread
  /// when the ring may be full — the consumer would wait on itself;
  /// consumers drain and retry instead.
  uint64_t Push(T value) {
    uint64_t ticket = 0;
    size_t spins = 0;
    // Safe to retry: a failed TryPush leaves `value` intact.
    while (!TryPush(std::move(value), &ticket)) {
      if (++spins > 64) std::this_thread::yield();
    }
    return ticket;
  }

  /// Single-consumer pop in ticket order.  Returns false when empty.
  bool TryPop(T* out) {
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell* cell = &cells_[pos & mask_];
    uint64_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // next cell not yet published
    }
    T* item = reinterpret_cast<T*>(cell->storage);
    *out = std::move(*item);
    item->~T();
    cell->seq.store(pos + capacity_, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side emptiness check (racy for producers, exact for the
  /// consumer: no item published at the dequeue cursor).
  bool Empty() const {
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell* cell = &cells_[pos & mask_];
    uint64_t seq = cell->seq.load(std::memory_order_acquire);
    return static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0;
  }

  /// The ticket the next successful push will claim.  Only meaningful
  /// when no producer is concurrently mid-push (e.g. on the owner
  /// thread during a producer-quiescent resync).
  uint64_t next_ticket() const {
    return enqueue_pos_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> seq;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  std::unique_ptr<Cell[]> cells_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
};

}  // namespace entangled

#endif  // ENTANGLED_COMMON_MPSC_QUEUE_H_
